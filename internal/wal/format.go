// Package wal implements the per-session write-ahead operation log that
// makes acknowledged mutations durable between checkpoints. A session's
// state is exactly reproducible as snapshot base + operation tail: the
// engine's construction is driven by a well-defined sequence of logical
// operations over wire handles, so journaling those operations (with the
// handle each one produced) before acknowledging them lets startup
// recovery rebuild the session — same id, same handle numbering — from
// the newest checkpoint plus the log tail.
//
// On-disk layout (the durability layout of a checkpoint directory):
//
//	<dir>/<id>.<seq>.snap    checkpoint snapshot: session state after
//	                         applying every record with sequence <= seq
//	<dir>/<id>.meta.json     engine configuration + the wal base seq
//	<dir>/wal/<id>.<seq>.wal log segments; a segment with base b holds
//	                         records b+1, b+2, ... in order
//
// Segment file format:
//
//	header (32 bytes in version 2; version-1 headers are 24 bytes and
//	still readable):
//	  magic   [8]byte  "BFBDDWAL"
//	  version uint16
//	  flags   uint16   (none defined; must be zero)
//	  base    uint64   sequence number the segment starts after
//	  epoch   uint64   replication epoch (v2 only; v1 reads as 0)
//	  crc     uint32   IEEE CRC-32 of the preceding header bytes
//
//	then a series of records, each framed as:
//	  length  uint32   payload bytes (bounded by MaxRecordLen)
//	  crc     uint32   IEEE CRC-32 of payload
//	  payload [length]byte
//
//	payload: uvarint(seq), byte(kind), kind-specific body (uvarints and
//	raw bytes; see the Record implementations).
//
// Sequence numbers are per-session, strictly increasing, and assigned at
// append time; a record is acknowledged to the client only after its
// frame is written (and, under the "always" sync policy, fsynced). A
// crash can therefore leave at most a torn suffix: the reader stops a
// segment at the first frame whose length, CRC, or sequence is wrong and
// treats everything after it as unwritten — torn tails are detected and
// discarded, never fatal. Every malformed input is reported as a typed
// error (ErrBadMagic, ErrVersion, ErrChecksum, ErrTruncated,
// ErrCorrupt); the reader never panics on hostile bytes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a WAL segment file.
const Magic = "BFBDDWAL"

// Version is the format version this package writes. Version 1 (no
// epoch field) remains readable.
const Version = 2

// HeaderSize is the byte length of the segment header this package
// writes (version 2). Version-1 headers are headerSizeV1 bytes.
const HeaderSize = 32

// headerSizeV1 is the byte length of a version-1 segment header.
const headerSizeV1 = 24

// MaxRecordLen bounds a single record payload; longer claims are
// rejected as torn/corrupt before any allocation of that size.
const MaxRecordLen = 1 << 26

// frameOverhead is the length+crc prefix of each record frame.
const frameOverhead = 8

// Typed decode errors. Every reader failure wraps exactly one of these.
var (
	// ErrBadMagic means the file does not start with the WAL magic.
	ErrBadMagic = errors.New("wal: bad magic")
	// ErrVersion means the segment's version or flags are unsupported.
	ErrVersion = errors.New("wal: unsupported version")
	// ErrChecksum means a header or record CRC does not match.
	ErrChecksum = errors.New("wal: checksum mismatch")
	// ErrTruncated means the stream ended inside a header.
	ErrTruncated = errors.New("wal: truncated stream")
	// ErrCorrupt means a record is structurally invalid (bad varint,
	// unknown kind, count mismatch, sequence regression, ...).
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed means the log was used after Close.
	ErrClosed = errors.New("wal: log is closed")
	// ErrBroken means a previous append or sync failed in a way that
	// could not be rolled back; the log refuses further appends so the
	// on-disk prefix stays an exact prefix of the acknowledged history.
	ErrBroken = errors.New("wal: log is broken (previous write failed)")
	// ErrNoChain means the segment chain cannot reach the requested
	// replay base: segments exist, but the earliest starts after it.
	ErrNoChain = errors.New("wal: segment chain does not reach base")
	// ErrFenced means the on-disk history carries a newer replication
	// epoch than the caller's: a promoted replica owns this session now,
	// and appending under the stale epoch would fork acknowledged
	// history.
	ErrFenced = errors.New("wal: stale epoch (history owned by a newer primary)")
)

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Kind identifies one record type. Values are part of the on-disk
// format and append-only.
type Kind uint8

const (
	KindInvalid  Kind = 0
	KindCreate   Kind = 1  // session created: engine/order/budget config
	KindVar      Kind = 2  // variable (or negated variable) handle
	KindConst    Kind = 3  // constant handle
	KindApply    Kind = 4  // one binary apply
	KindBatch    Kind = 5  // an explicit batch of binary applies
	KindITE      Kind = 6  // if-then-else
	KindNot      Kind = 7  // negation
	KindQuantify Kind = 8  // exists/forall over a variable set
	KindRestrict Kind = 9  // cofactor
	KindCompose  Kind = 10 // substitution
	KindFree     Kind = 11 // handle release
	KindGC       Kind = 12 // explicit collection
	KindSetOrder Kind = 13 // variable order change
	KindSnapshot Kind = 14 // wire snapshot exported (audit; no state)
	KindPublish  Kind = 15 // compiled artifact published (audit; no state)
	KindClose    Kind = 16 // session closed; recovery must not resurrect
	numKinds          = 17
)

var kindNames = [numKinds]string{
	"invalid", "create", "var", "const", "apply", "batch", "ite", "not",
	"quantify", "restrict", "compose", "free", "gc", "setorder",
	"snapshot", "publish", "close",
}

func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("wal.Kind(%d)", uint8(k))
}

// NumOps is the number of binary apply operation codes; the values match
// bfbdd.BatchOpKind (and, upward, the wire grammar) by construction and
// are validated on decode.
const NumOps = 8

// Record is one journaled operation. Implementations are pure data;
// encoding appends the kind-specific body (everything after the seq and
// kind prefix of the payload).
type Record interface {
	Kind() Kind
	encodeBody(b []byte) []byte
}

// Entry is one decoded record with its sequence number.
type Entry struct {
	Seq uint64
	Rec Record
}

// CreateRec journals session creation; Options carries the wire
// SessionOptions JSON so recovery rebuilds the session under the same
// engine configuration even before its first checkpoint exists.
type CreateRec struct{ Options []byte }

// VarRec journals Var/NVar; Handle is the wire handle the result got.
type VarRec struct {
	Index   int
	Negated bool
	Handle  uint64
}

// ConstRec journals Zero/One materialization.
type ConstRec struct {
	Value  bool
	Handle uint64
}

// ApplyRec journals one binary apply. Op is the bfbdd.BatchOpKind code.
type ApplyRec struct {
	Op     uint8
	F, G   uint64
	Handle uint64
}

// BatchRec journals an explicit client batch as one record, so the whole
// batch shares one frame and one group-commit fsync.
type BatchRec struct{ Ops []ApplyRec }

// ITERec journals if-then-else.
type ITERec struct {
	F, G, H uint64
	Handle  uint64
}

// NotRec journals negation.
type NotRec struct {
	F      uint64
	Handle uint64
}

// QuantifyRec journals exists/forall over Vars.
type QuantifyRec struct {
	Forall bool
	F      uint64
	Vars   []int
	Handle uint64
}

// RestrictRec journals a cofactor.
type RestrictRec struct {
	F      uint64
	Var    int
	Value  bool
	Handle uint64
}

// ComposeRec journals substitution of G for Var in F.
type ComposeRec struct {
	F, G   uint64
	Var    int
	Handle uint64
}

// FreeRec journals handle release.
type FreeRec struct{ Handles []uint64 }

// GCRec journals an explicit collection.
type GCRec struct{}

// SetOrderRec journals a variable-order change (Levels[v] = level of v).
type SetOrderRec struct{ Levels []int }

// SnapshotRec journals a wire snapshot export (audit only; replay skips).
type SnapshotRec struct{}

// PublishRec journals a compiled-artifact publish (audit only; artifact
// durability is owned by the artifact registry's persist-before-register
// protocol, so replay skips it).
type PublishRec struct {
	Name    string
	Handles []uint64
}

// CloseRec journals an acknowledged session delete; a replay that ends
// on one reports the session closed so recovery removes it instead of
// resurrecting it.
type CloseRec struct{}

func (CreateRec) Kind() Kind   { return KindCreate }
func (VarRec) Kind() Kind      { return KindVar }
func (ConstRec) Kind() Kind    { return KindConst }
func (ApplyRec) Kind() Kind    { return KindApply }
func (BatchRec) Kind() Kind    { return KindBatch }
func (ITERec) Kind() Kind      { return KindITE }
func (NotRec) Kind() Kind      { return KindNot }
func (QuantifyRec) Kind() Kind { return KindQuantify }
func (RestrictRec) Kind() Kind { return KindRestrict }
func (ComposeRec) Kind() Kind  { return KindCompose }
func (FreeRec) Kind() Kind     { return KindFree }
func (GCRec) Kind() Kind       { return KindGC }
func (SetOrderRec) Kind() Kind { return KindSetOrder }
func (SnapshotRec) Kind() Kind { return KindSnapshot }
func (PublishRec) Kind() Kind  { return KindPublish }
func (CloseRec) Kind() Kind    { return KindClose }

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func (r CreateRec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, uint64(len(r.Options)))
	return append(b, r.Options...)
}

func (r VarRec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, uint64(r.Index))
	b = appendBool(b, r.Negated)
	return appendUvarint(b, r.Handle)
}

func (r ConstRec) encodeBody(b []byte) []byte {
	b = appendBool(b, r.Value)
	return appendUvarint(b, r.Handle)
}

func (r ApplyRec) encodeBody(b []byte) []byte {
	b = append(b, r.Op)
	b = appendUvarint(b, r.F)
	b = appendUvarint(b, r.G)
	return appendUvarint(b, r.Handle)
}

func (r BatchRec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, uint64(len(r.Ops)))
	for _, op := range r.Ops {
		b = op.encodeBody(b)
	}
	return b
}

func (r ITERec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, r.F)
	b = appendUvarint(b, r.G)
	b = appendUvarint(b, r.H)
	return appendUvarint(b, r.Handle)
}

func (r NotRec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, r.F)
	return appendUvarint(b, r.Handle)
}

func (r QuantifyRec) encodeBody(b []byte) []byte {
	b = appendBool(b, r.Forall)
	b = appendUvarint(b, r.F)
	b = appendUvarint(b, uint64(len(r.Vars)))
	for _, v := range r.Vars {
		b = appendUvarint(b, uint64(v))
	}
	return appendUvarint(b, r.Handle)
}

func (r RestrictRec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, r.F)
	b = appendUvarint(b, uint64(r.Var))
	b = appendBool(b, r.Value)
	return appendUvarint(b, r.Handle)
}

func (r ComposeRec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, r.F)
	b = appendUvarint(b, uint64(r.Var))
	b = appendUvarint(b, r.G)
	return appendUvarint(b, r.Handle)
}

func (r FreeRec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, uint64(len(r.Handles)))
	for _, h := range r.Handles {
		b = appendUvarint(b, h)
	}
	return b
}

func (GCRec) encodeBody(b []byte) []byte { return b }

func (r SetOrderRec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, uint64(len(r.Levels)))
	for _, l := range r.Levels {
		b = appendUvarint(b, uint64(l))
	}
	return b
}

func (SnapshotRec) encodeBody(b []byte) []byte { return b }

func (r PublishRec) encodeBody(b []byte) []byte {
	b = appendUvarint(b, uint64(len(r.Name)))
	b = append(b, r.Name...)
	b = appendUvarint(b, uint64(len(r.Handles)))
	for _, h := range r.Handles {
		b = appendUvarint(b, h)
	}
	return b
}

func (CloseRec) encodeBody(b []byte) []byte { return b }

// payloadReader walks a record payload with bounds checking; every
// overrun produces ErrCorrupt, never a slice panic.
type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, corrupt("bad varint at offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) count(max uint64) (int, error) {
	v, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	// A count can never exceed the remaining payload bytes (every element
	// costs at least one byte), so hostile counts are rejected before any
	// allocation of that size.
	if rem := uint64(len(p.b) - p.off); v > rem || v > max {
		return 0, corrupt("count %d exceeds payload", v)
	}
	return int(v), nil
}

func (p *payloadReader) intVal() (int, error) {
	v, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(int(^uint(0)>>1)) {
		return 0, corrupt("value %d overflows int", v)
	}
	return int(v), nil
}

func (p *payloadReader) byteVal() (byte, error) {
	if p.off >= len(p.b) {
		return 0, corrupt("payload underrun at offset %d", p.off)
	}
	v := p.b[p.off]
	p.off++
	return v, nil
}

func (p *payloadReader) boolVal() (bool, error) {
	v, err := p.byteVal()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, corrupt("bad bool byte %#x", v)
}

func (p *payloadReader) bytes(n int) ([]byte, error) {
	if n < 0 || p.off+n > len(p.b) {
		return nil, corrupt("payload underrun reading %d bytes", n)
	}
	v := p.b[p.off : p.off+n]
	p.off = p.off + n
	return v, nil
}

func (p *payloadReader) done() error {
	if p.off != len(p.b) {
		return corrupt("%d trailing payload bytes", len(p.b)-p.off)
	}
	return nil
}

func (p *payloadReader) opByte() (uint8, error) {
	op, err := p.byteVal()
	if err != nil {
		return 0, err
	}
	if op >= NumOps {
		return 0, corrupt("apply op %d out of range", op)
	}
	return op, nil
}

// EncodeRecord renders one record's full payload (seq, kind, body).
func EncodeRecord(seq uint64, rec Record) []byte {
	b := appendUvarint(nil, seq)
	b = append(b, byte(rec.Kind()))
	return rec.encodeBody(b)
}

// DecodeRecord parses one record payload. Hostile bytes produce a typed
// error, never a panic.
func DecodeRecord(payload []byte) (Entry, error) {
	p := &payloadReader{b: payload}
	seq, err := p.uvarint()
	if err != nil {
		return Entry{}, err
	}
	kb, err := p.byteVal()
	if err != nil {
		return Entry{}, err
	}
	rec, err := decodeBody(Kind(kb), p)
	if err != nil {
		return Entry{}, err
	}
	if err := p.done(); err != nil {
		return Entry{}, err
	}
	return Entry{Seq: seq, Rec: rec}, nil
}

func decodeBody(kind Kind, p *payloadReader) (Record, error) {
	switch kind {
	case KindCreate:
		n, err := p.count(MaxRecordLen)
		if err != nil {
			return nil, err
		}
		opts, err := p.bytes(n)
		if err != nil {
			return nil, err
		}
		// Copy: the payload buffer is reused by the segment scanner.
		return CreateRec{Options: append([]byte(nil), opts...)}, nil
	case KindVar:
		var r VarRec
		var err error
		if r.Index, err = p.intVal(); err != nil {
			return nil, err
		}
		if r.Negated, err = p.boolVal(); err != nil {
			return nil, err
		}
		if r.Handle, err = p.uvarint(); err != nil {
			return nil, err
		}
		return r, nil
	case KindConst:
		var r ConstRec
		var err error
		if r.Value, err = p.boolVal(); err != nil {
			return nil, err
		}
		if r.Handle, err = p.uvarint(); err != nil {
			return nil, err
		}
		return r, nil
	case KindApply:
		return decodeApply(p)
	case KindBatch:
		n, err := p.count(MaxRecordLen)
		if err != nil {
			return nil, err
		}
		r := BatchRec{Ops: make([]ApplyRec, n)}
		for i := range r.Ops {
			op, err := decodeApply(p)
			if err != nil {
				return nil, err
			}
			r.Ops[i] = op
		}
		return r, nil
	case KindITE:
		var r ITERec
		var err error
		if r.F, err = p.uvarint(); err != nil {
			return nil, err
		}
		if r.G, err = p.uvarint(); err != nil {
			return nil, err
		}
		if r.H, err = p.uvarint(); err != nil {
			return nil, err
		}
		if r.Handle, err = p.uvarint(); err != nil {
			return nil, err
		}
		return r, nil
	case KindNot:
		var r NotRec
		var err error
		if r.F, err = p.uvarint(); err != nil {
			return nil, err
		}
		if r.Handle, err = p.uvarint(); err != nil {
			return nil, err
		}
		return r, nil
	case KindQuantify:
		var r QuantifyRec
		var err error
		if r.Forall, err = p.boolVal(); err != nil {
			return nil, err
		}
		if r.F, err = p.uvarint(); err != nil {
			return nil, err
		}
		n, err := p.count(MaxRecordLen)
		if err != nil {
			return nil, err
		}
		r.Vars = make([]int, n)
		for i := range r.Vars {
			if r.Vars[i], err = p.intVal(); err != nil {
				return nil, err
			}
		}
		if r.Handle, err = p.uvarint(); err != nil {
			return nil, err
		}
		return r, nil
	case KindRestrict:
		var r RestrictRec
		var err error
		if r.F, err = p.uvarint(); err != nil {
			return nil, err
		}
		if r.Var, err = p.intVal(); err != nil {
			return nil, err
		}
		if r.Value, err = p.boolVal(); err != nil {
			return nil, err
		}
		if r.Handle, err = p.uvarint(); err != nil {
			return nil, err
		}
		return r, nil
	case KindCompose:
		var r ComposeRec
		var err error
		if r.F, err = p.uvarint(); err != nil {
			return nil, err
		}
		if r.Var, err = p.intVal(); err != nil {
			return nil, err
		}
		if r.G, err = p.uvarint(); err != nil {
			return nil, err
		}
		if r.Handle, err = p.uvarint(); err != nil {
			return nil, err
		}
		return r, nil
	case KindFree:
		n, err := p.count(MaxRecordLen)
		if err != nil {
			return nil, err
		}
		r := FreeRec{Handles: make([]uint64, n)}
		for i := range r.Handles {
			if r.Handles[i], err = p.uvarint(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case KindGC:
		return GCRec{}, nil
	case KindSetOrder:
		n, err := p.count(MaxRecordLen)
		if err != nil {
			return nil, err
		}
		r := SetOrderRec{Levels: make([]int, n)}
		var err2 error
		for i := range r.Levels {
			if r.Levels[i], err2 = p.intVal(); err2 != nil {
				return nil, err2
			}
		}
		return r, nil
	case KindSnapshot:
		return SnapshotRec{}, nil
	case KindPublish:
		n, err := p.count(MaxRecordLen)
		if err != nil {
			return nil, err
		}
		name, err := p.bytes(n)
		if err != nil {
			return nil, err
		}
		hn, err := p.count(MaxRecordLen)
		if err != nil {
			return nil, err
		}
		r := PublishRec{Name: string(name), Handles: make([]uint64, hn)}
		for i := range r.Handles {
			if r.Handles[i], err = p.uvarint(); err != nil {
				return nil, err
			}
		}
		return r, nil
	case KindClose:
		return CloseRec{}, nil
	}
	return nil, corrupt("unknown record kind %d", uint8(kind))
}

func decodeApply(p *payloadReader) (ApplyRec, error) {
	var r ApplyRec
	var err error
	if r.Op, err = p.opByte(); err != nil {
		return r, err
	}
	if r.F, err = p.uvarint(); err != nil {
		return r, err
	}
	if r.G, err = p.uvarint(); err != nil {
		return r, err
	}
	if r.Handle, err = p.uvarint(); err != nil {
		return r, err
	}
	return r, nil
}

// encodeHeader renders a version-2 segment header for base and epoch.
func encodeHeader(base, epoch uint64) []byte {
	b := make([]byte, HeaderSize)
	copy(b, Magic)
	binary.LittleEndian.PutUint16(b[8:], Version)
	binary.LittleEndian.PutUint16(b[10:], 0) // flags
	binary.LittleEndian.PutUint64(b[12:], base)
	binary.LittleEndian.PutUint64(b[20:], epoch)
	binary.LittleEndian.PutUint32(b[28:], crc32.ChecksumIEEE(b[:28]))
	return b
}

// ParseHeader decodes and validates a segment header (version 1 or 2)
// and returns its base, epoch (0 for v1), and byte length n.
func ParseHeader(b []byte) (base, epoch uint64, n int, err error) {
	if len(b) < headerSizeV1 {
		return 0, 0, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	if string(b[:8]) != Magic {
		return 0, 0, 0, ErrBadMagic
	}
	base = binary.LittleEndian.Uint64(b[12:])
	switch v := binary.LittleEndian.Uint16(b[8:]); v {
	case 1:
		if got, want := binary.LittleEndian.Uint32(b[20:24]), crc32.ChecksumIEEE(b[:20]); got != want {
			return 0, 0, 0, fmt.Errorf("%w: header", ErrChecksum)
		}
		n = headerSizeV1
	case Version:
		if len(b) < HeaderSize {
			return 0, 0, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
		}
		if got, want := binary.LittleEndian.Uint32(b[28:32]), crc32.ChecksumIEEE(b[:28]); got != want {
			return 0, 0, 0, fmt.Errorf("%w: header", ErrChecksum)
		}
		epoch = binary.LittleEndian.Uint64(b[20:28])
		n = HeaderSize
	default:
		return 0, 0, 0, fmt.Errorf("%w: version %d", ErrVersion, v)
	}
	if f := binary.LittleEndian.Uint16(b[10:]); f != 0 {
		return 0, 0, 0, fmt.Errorf("%w: unknown flags %#x", ErrVersion, f)
	}
	return base, epoch, n, nil
}
