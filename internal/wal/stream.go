package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// This file is the replication-facing surface of the WAL: headerless
// wire frames (the segment record framing without a segment header),
// batch collection from the live segment chain on the primary, frame
// decoding on the follower, and the end-to-end chain verifier shared by
// recovery tooling.

// AppendFrame appends one wire frame (length, CRC, payload) for a
// record payload produced by EncodeRecord.
func AppendFrame(b, payload []byte) []byte {
	var frame [frameOverhead]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	b = append(b, frame[:]...)
	return append(b, payload...)
}

// ScanFrames decodes a headerless stream of record frames, calling fn
// for each well-formed record in order, and returns how many were
// delivered. A torn or corrupt frame ends the scan with a typed error
// after the preceding records were delivered: a follower receiving a
// connection-severed batch applies the intact prefix and re-polls from
// there. fn errors abort the scan and are returned as-is.
func ScanFrames(data []byte, fn func(Entry) error) (int, error) {
	n := 0
	for off := 0; off < len(data); {
		if len(data)-off < frameOverhead {
			return n, fmt.Errorf("%w: partial frame prefix", ErrTruncated)
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > MaxRecordLen {
			return n, corrupt("frame length %d", length)
		}
		off += frameOverhead
		if uint64(len(data)-off) < uint64(length) {
			return n, fmt.Errorf("%w: partial frame payload", ErrTruncated)
		}
		payload := data[off : off+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			return n, fmt.Errorf("%w: record frame", ErrChecksum)
		}
		ent, err := DecodeRecord(payload)
		if err != nil {
			return n, err
		}
		if err := fn(ent); err != nil {
			return n, err
		}
		n++
		off += int(length)
	}
	return n, nil
}

// errStopCollect ends a CollectFrames replay early (limit reached).
var errStopCollect = errors.New("wal: stop collect")

// CollectFrames re-encodes id's records with from < seq <= upTo as a
// wire-frame batch, reading them back from the segment chain in dir.
// Collection stops early once maxBytes of frames are gathered
// (maxBytes <= 0 means unlimited) but always includes at least one
// record when any is available; it returns the frames and the sequence
// of the last included record. ErrNoChain reports that the chain no
// longer reaches from — the records were truncated away and the caller
// must re-bootstrap from a snapshot instead.
func CollectFrames(dir, id string, from, upTo uint64, maxBytes int) ([]byte, uint64, error) {
	var out []byte
	last := from
	st, err := ReplayTail(dir, id, from, func(e Entry) error {
		if e.Seq > upTo {
			return errStopCollect
		}
		if maxBytes > 0 && len(out) >= maxBytes {
			return errStopCollect
		}
		out = AppendFrame(out, EncodeRecord(e.Seq, e.Rec))
		last = e.Seq
		return nil
	})
	if err != nil {
		if errors.Is(err, errStopCollect) {
			return out, last, nil
		}
		return nil, from, err
	}
	if st.Gap && last < upTo {
		return nil, from, fmt.Errorf("%w: oldest reachable segment starts at %d", ErrNoChain, st.GapBase)
	}
	return out, last, nil
}

// MaxEpoch returns the highest replication epoch stamped in id's
// on-disk segment headers (0 when there are none, or all are v1).
// Unreadable or corrupt headers are skipped: the fence is a refusal to
// overwrite newer history, not a corruption detector — that is
// VerifyChain's job.
func MaxEpoch(dir, id string) (uint64, error) {
	segs, err := ListSegments(dir, id)
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, sg := range segs {
		epoch, err := readSegmentEpoch(sg.Path)
		if err != nil {
			continue
		}
		if epoch > max {
			max = epoch
		}
	}
	return max, nil
}

func readSegmentEpoch(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, HeaderSize)
	n, err := io.ReadFull(f, hdr)
	if err != nil && n < headerSizeV1 {
		return 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, n)
	}
	_, epoch, _, err := ParseHeader(hdr[:n])
	return epoch, err
}

// ChainStats summarizes an end-to-end VerifyChain pass.
type ChainStats struct {
	Segments  int    // segment files in the chain
	Records   uint64 // well-formed records delivered across the chain
	FirstBase uint64 // oldest segment's base
	LastSeq   uint64 // chain head (highest contiguous sequence)
	TornTail  bool   // the newest segment ended in a (tolerated) torn tail
	MaxEpoch  uint64 // highest epoch seen in any header
}

// VerifyChain scans id's full segment chain end-to-end and enforces the
// cross-segment durability invariants, not just per-segment framing:
// every header parses, sequences are dense from the oldest base across
// segment boundaries (overlap from a crash between rotation and
// truncation is fine, a gap is not), a torn tail is tolerated only on
// the newest segment, and the replication epoch never decreases along
// the chain. A session with no segments verifies vacuously.
func VerifyChain(dir, id string) (ChainStats, error) {
	var cs ChainStats
	segs, err := ListSegments(dir, id)
	if err != nil {
		return cs, err
	}
	last := uint64(0)
	epoch := uint64(0)
	for i, sg := range segs {
		name := filepath.Base(sg.Path)
		st, err := ScanSegmentFile(sg.Path, func(Entry) error { return nil })
		if err != nil {
			return cs, fmt.Errorf("%s: %w", name, err)
		}
		if st.Base != sg.Base {
			return cs, fmt.Errorf("%s: %w: header base %d != name base %d", name, ErrCorrupt, st.Base, sg.Base)
		}
		if i == 0 {
			cs.FirstBase = sg.Base
			last = sg.Base
		} else {
			if sg.Base > last {
				return cs, fmt.Errorf("%s: %w: segment base %d unreachable, chain ends at seq %d", name, ErrNoChain, sg.Base, last)
			}
			if st.Epoch < epoch {
				return cs, fmt.Errorf("%s: %w: epoch regressed %d -> %d along the chain", name, ErrCorrupt, epoch, st.Epoch)
			}
		}
		if st.Torn && i != len(segs)-1 {
			return cs, fmt.Errorf("%s: torn mid-chain: %w", name, st.TornErr)
		}
		cs.Segments++
		cs.Records += uint64(st.Records)
		if st.LastSeq > last {
			last = st.LastSeq
		}
		epoch = st.Epoch
		if st.Epoch > cs.MaxEpoch {
			cs.MaxEpoch = st.Epoch
		}
		cs.TornTail = st.Torn
	}
	cs.LastSeq = last
	return cs, nil
}
