package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bfbdd/internal/faultinject"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs every Append before it returns: zero acknowledged
	// records are lost even to a power failure.
	SyncAlways SyncPolicy = iota
	// SyncInterval writes every record to the OS synchronously but fsyncs
	// on a timer: a process crash (kill -9) loses nothing, a power or
	// kernel failure loses at most one interval of acknowledged records.
	SyncInterval
	// SyncNone never fsyncs explicitly: a process crash still loses
	// nothing (records reach the OS before the ack), but an OS failure
	// can drop anything not yet written back.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always|interval|none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("wal.SyncPolicy(%d)", int(p))
}

// Options tunes a Log.
type Options struct {
	Policy   SyncPolicy
	Interval time.Duration // SyncInterval cadence; defaults to 100ms
	// Epoch is the replication epoch stamped into segment headers. Open
	// refuses (ErrFenced) when the on-disk history already carries a
	// higher epoch: a promoted replica owns the session and a stale
	// primary must not fork acknowledged history.
	Epoch uint64
}

// Counters is the shared atomic counter block behind the bfbdd_wal_*
// metrics; one instance is typically shared by every session's log.
type Counters struct {
	Appended     atomic.Uint64 // records appended
	AppendErrors atomic.Uint64 // failed appends (after rollback)
	Fsyncs       atomic.Uint64 // explicit fsyncs of segment data
	Rotations    atomic.Uint64 // segments opened by Rotate
	Truncated    atomic.Uint64 // segment files deleted by TruncateTo
	Replayed     atomic.Uint64 // records applied during recovery
	TornTails    atomic.Uint64 // torn tails discarded during replay
	ChainRejects atomic.Uint64 // checkpoint/WAL pairs refused (no chain)
}

// Log is one session's append-only operation log. Appends may come from
// multiple goroutines (the session executor, plus the close and publish
// paths); all mutation is serialized by the internal mutex. An Append
// returns only after its frame reached the operating system (and, under
// SyncAlways, the disk) — the caller acknowledges the client after that,
// which is the whole write-ahead contract.
type Log struct {
	dir  string
	id   string
	opts Options
	ctr  *Counters

	mu     sync.Mutex
	f      *os.File
	base   uint64 // active segment's base sequence
	seq    uint64 // last assigned sequence number
	off    int64  // committed byte offset in the active segment
	buf    []byte // frame assembly buffer, reused across appends
	dirty  bool   // bytes written since the last fsync
	broken bool   // a write failed and could not be rolled back
	closed bool

	flushStop chan struct{}
	flushDone chan struct{}
}

// Dir is the WAL subdirectory of a checkpoint directory.
func Dir(checkpointDir string) string { return filepath.Join(checkpointDir, "wal") }

// SegmentName is the file name of the segment starting after base. The
// fixed-width decimal keeps lexical order equal to numeric order.
func SegmentName(id string, base uint64) string {
	return fmt.Sprintf("%s.%020d.wal", id, base)
}

// ParseSegmentName inverts SegmentName.
func ParseSegmentName(name string) (id string, base uint64, ok bool) {
	rest, found := strings.CutSuffix(name, ".wal")
	if !found {
		return "", 0, false
	}
	i := strings.LastIndexByte(rest, '.')
	if i < 0 || len(rest)-i-1 != 20 {
		return "", 0, false
	}
	n, err := strconv.ParseUint(rest[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return rest[:i], n, true
}

// SnapshotName is the file name of a checkpoint snapshot taken at seq.
func SnapshotName(id string, seq uint64) string {
	return fmt.Sprintf("%s.%020d.snap", id, seq)
}

// ParseSnapshotName inverts SnapshotName.
func ParseSnapshotName(name string) (id string, seq uint64, ok bool) {
	rest, found := strings.CutSuffix(name, ".snap")
	if !found {
		return "", 0, false
	}
	i := strings.LastIndexByte(rest, '.')
	if i < 0 || len(rest)-i-1 != 20 {
		return "", 0, false
	}
	n, err := strconv.ParseUint(rest[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return rest[:i], n, true
}

// Open creates (or truncates) the segment starting after base and
// returns a log whose next record gets sequence base+1. The segment file
// and its directory entry are made durable before Open returns, so a
// crash right after cannot lose the segment boundary.
func Open(dir, id string, base uint64, opts Options, ctr *Counters) (*Log, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if ctr == nil {
		ctr = &Counters{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if max, err := MaxEpoch(dir, id); err == nil && max > opts.Epoch {
		return nil, fmt.Errorf("%w: on-disk epoch %d, caller epoch %d", ErrFenced, max, opts.Epoch)
	}
	l := &Log{dir: dir, id: id, opts: opts, ctr: ctr, base: base, seq: base}
	f, err := createSegment(dir, id, base, opts.Epoch)
	if err != nil {
		return nil, err
	}
	l.f = f
	l.off = HeaderSize
	if opts.Policy == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// createSegment stages a new segment file: header written, file synced,
// directory synced.
func createSegment(dir, id string, base, epoch uint64) (*os.File, error) {
	path := filepath.Join(dir, SegmentName(id, base))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(encodeHeader(base, epoch)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return f, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Seq returns the sequence number of the last appended record.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Append journals recs as one commit group: one frame per record, one
// write to the OS, and — under SyncAlways — one fsync for the whole
// group. On success the records' sequence numbers are l.Seq()-len(recs)+1
// ... l.Seq(). On failure nothing is appended: the file is rewound to the
// pre-call offset, or, if that rewind itself fails, the log latches
// broken and refuses all future appends (the on-disk prefix must stay an
// exact prefix of the acknowledged history; a hole in the middle would
// make every later record unreachable to recovery).
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.broken:
		return ErrBroken
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.WALAppend); err != nil {
			l.ctr.AppendErrors.Add(1)
			return err
		}
	}
	l.buf = l.buf[:0]
	for i, rec := range recs {
		payload := EncodeRecord(l.seq+uint64(i)+1, rec)
		var frame [frameOverhead]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
		l.buf = append(l.buf, frame[:]...)
		l.buf = append(l.buf, payload...)
	}
	if _, err := l.f.Write(l.buf); err != nil {
		// Rewind so a partially written group does not become a torn
		// middle once later appends succeed.
		if terr := l.f.Truncate(l.off); terr != nil {
			l.broken = true
		} else if _, serr := l.f.Seek(l.off, 0); serr != nil {
			l.broken = true
		}
		l.ctr.AppendErrors.Add(1)
		return err
	}
	l.off += int64(len(l.buf))
	l.seq += uint64(len(recs))
	l.dirty = true
	l.ctr.Appended.Add(uint64(len(recs)))
	if l.opts.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			// The group may or may not be durable; refusing further
			// appends keeps "acknowledged" and "recoverable" from
			// diverging silently.
			l.broken = true
			l.ctr.AppendErrors.Add(1)
			return err
		}
	}
	return nil
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.WALSync); err != nil {
			return err
		}
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.ctr.Fsyncs.Add(1)
	return nil
}

// Sync forces the active segment to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// flushLoop is the SyncInterval group-commit timer.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Rotate makes the current segment durable and opens a fresh one based at
// the current sequence, so records journaled after a checkpoint land in a
// segment the checkpoint does not cover. It is a no-op when the active
// segment is already based at the current sequence (nothing was appended
// since the last rotation). On failure the old segment stays active —
// the chain is still valid, recovery just replays a longer tail.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.broken:
		return ErrBroken
	case l.base == l.seq:
		return nil
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.WALRotate); err != nil {
			return err
		}
	}
	// The old segment must be durable before the new one exists: the new
	// segment's base asserts everything up to it is on disk.
	if err := l.syncLocked(); err != nil {
		return err
	}
	f, err := createSegment(l.dir, l.id, l.seq, l.opts.Epoch)
	if err != nil {
		return err
	}
	old := l.f
	l.f = f
	l.base = l.seq
	l.off = HeaderSize
	l.dirty = false
	l.ctr.Rotations.Add(1)
	return old.Close()
}

// Epoch returns the replication epoch stamped into new segments.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opts.Epoch
}

// SetEpoch raises the epoch stamped into segment headers (promotion).
// The active segment is replaced so the new epoch is on disk before
// SetEpoch returns: rewritten in place if it holds no records,
// otherwise rotated away. Lowering the epoch is refused.
func (l *Log) SetEpoch(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.broken:
		return ErrBroken
	case epoch == l.opts.Epoch:
		return nil
	case epoch < l.opts.Epoch:
		return fmt.Errorf("%w: cannot lower epoch %d to %d", ErrFenced, l.opts.Epoch, epoch)
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	rotated := l.base != l.seq
	f, err := createSegment(l.dir, l.id, l.seq, epoch)
	if err != nil {
		return err
	}
	l.opts.Epoch = epoch
	old := l.f
	l.f = f
	l.base = l.seq
	l.off = HeaderSize
	l.dirty = false
	if rotated {
		l.ctr.Rotations.Add(1)
	}
	return old.Close()
}

// TruncateTo deletes this log's segments that a checkpoint at seq fully
// covers (base < seq), never the active segment. Failures are returned
// but benign: leftover covered segments only make recovery skip more
// records.
func (l *Log) TruncateTo(seq uint64) error {
	l.mu.Lock()
	active := l.base
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if faultinject.Enabled {
		if err := faultinject.Check(faultinject.WALTruncate); err != nil {
			return err
		}
	}
	segs, err := ListSegments(l.dir, l.id)
	if err != nil {
		return err
	}
	var firstErr error
	removed := 0
	for _, sg := range segs {
		if sg.Base >= seq || sg.Base == active {
			continue
		}
		if err := os.Remove(sg.Path); err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil {
			removed++
		}
	}
	if removed > 0 {
		l.ctr.Truncated.Add(uint64(removed))
		if err := syncDir(l.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close flushes, fsyncs, and closes the active segment. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	stop := l.flushStop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	return err
}

// RemoveAll deletes every segment of id in dir (session deletion).
func RemoveAll(dir, id string) {
	segs, err := ListSegments(dir, id)
	if err != nil {
		return
	}
	for _, sg := range segs {
		os.Remove(sg.Path)
	}
}

// Segment describes one on-disk segment file.
type Segment struct {
	Path string
	Base uint64
}

// ListSegments returns id's segments in ascending base order. A missing
// directory is an empty list, not an error.
func ListSegments(dir, id string) ([]Segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []Segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		sid, base, ok := ParseSegmentName(e.Name())
		if !ok || sid != id {
			continue
		}
		segs = append(segs, Segment{Path: filepath.Join(dir, e.Name()), Base: base})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Base < segs[j].Base })
	return segs, nil
}

// SessionIDs returns the distinct session ids that have segments in dir.
func SessionIDs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	seen := make(map[string]struct{})
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id, _, ok := ParseSegmentName(e.Name())
		if !ok {
			continue
		}
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}
