package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

// FuzzWALReplay feeds hostile bytes to the full read path — record
// decode and segment scan — and checks the durability contract the
// recovery code leans on: no input panics, every well-formed record
// survives an encode/decode roundtrip, and a scan never delivers
// records beyond the first malformed frame.
func FuzzWALReplay(f *testing.F) {
	// Seeds: a clean segment, a torn one, and assorted corruptions.
	recs := []Record{
		CreateRec{Options: []byte(`{"vars":4}`)},
		VarRec{Index: 1, Handle: 1},
		ApplyRec{Op: 1, F: 1, G: 1, Handle: 2},
		BatchRec{Ops: []ApplyRec{{Op: 0, F: 1, G: 2, Handle: 3}}},
		QuantifyRec{F: 3, Vars: []int{0, 1}, Handle: 4},
		FreeRec{Handles: []uint64{1, 2}},
		CloseRec{},
	}
	var seg []byte
	seg = append(seg, encodeHeader(0, 0)...)
	for i, r := range recs {
		payload := EncodeRecord(uint64(i+1), r)
		var frame [frameOverhead]byte
		binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
		seg = append(seg, frame[:]...)
		seg = append(seg, payload...)
	}
	f.Add(seg)
	f.Add(seg[:len(seg)-3])
	f.Add(seg[:HeaderSize])
	f.Add([]byte(Magic))
	mut := append([]byte(nil), seg...)
	mut[HeaderSize+9] ^= 0xFF
	f.Add(mut)
	f.Add(EncodeRecord(1, VarRec{Index: 1, Handle: 1}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw payload decode: must not panic; a success must roundtrip.
		if ent, err := DecodeRecord(data); err == nil {
			re := EncodeRecord(ent.Seq, ent.Rec)
			ent2, err2 := DecodeRecord(re)
			if err2 != nil {
				t.Fatalf("re-decode of re-encoded record failed: %v", err2)
			}
			if ent2.Seq != ent.Seq || !reflect.DeepEqual(ent2.Rec, ent.Rec) {
				t.Fatalf("roundtrip diverged: %+v != %+v", ent2, ent)
			}
		}

		// Segment scan: must not panic, and the delivered records must be
		// densely sequenced.
		var last uint64
		first := true
		st, err := ScanSegment(bytes.NewReader(data), func(e Entry) error {
			if !first && e.Seq != last+1 {
				t.Fatalf("non-dense delivery: %d after %d", e.Seq, last)
			}
			first = false
			last = e.Seq
			return nil
		})
		if err != nil {
			return // typed header error; fine
		}
		if st.Records > 0 && st.LastSeq != last {
			t.Fatalf("LastSeq %d != last delivered %d", st.LastSeq, last)
		}
		if st.Records == 0 && st.LastSeq != st.Base {
			t.Fatalf("empty scan moved LastSeq: %+v", st)
		}
	})
}
