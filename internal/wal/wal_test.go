package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// allKinds is one record of every kind, with every field populated, so
// the roundtrip test covers the full body grammar.
func allKinds() []Record {
	return []Record{
		CreateRec{Options: []byte(`{"vars":16,"engine":"par"}`)},
		VarRec{Index: 3, Negated: true, Handle: 7},
		ConstRec{Value: true, Handle: 8},
		ApplyRec{Op: 2, F: 7, G: 8, Handle: 9},
		BatchRec{Ops: []ApplyRec{{Op: 0, F: 1, G: 2, Handle: 10}, {Op: 7, F: 9, G: 10, Handle: 11}}},
		ITERec{F: 7, G: 8, H: 9, Handle: 12},
		NotRec{F: 12, Handle: 13},
		QuantifyRec{Forall: true, F: 13, Vars: []int{0, 2, 5}, Handle: 14},
		RestrictRec{F: 14, Var: 1, Value: false, Handle: 15},
		ComposeRec{F: 15, G: 7, Var: 4, Handle: 16},
		FreeRec{Handles: []uint64{7, 8, 16}},
		GCRec{},
		SetOrderRec{Levels: []int{1, 0, 3, 2}},
		SnapshotRec{},
		PublishRec{Name: "f-abc", Handles: []uint64{13, 14}},
		CloseRec{},
	}
}

func TestRecordRoundtrip(t *testing.T) {
	for i, rec := range allKinds() {
		seq := uint64(i + 1)
		payload := EncodeRecord(seq, rec)
		ent, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", rec.Kind(), err)
		}
		if ent.Seq != seq {
			t.Fatalf("%s: seq %d, want %d", rec.Kind(), ent.Seq, seq)
		}
		if !reflect.DeepEqual(ent.Rec, rec) {
			t.Fatalf("%s: roundtrip %+v != %+v", rec.Kind(), ent.Rec, rec)
		}
	}
}

func TestDecodeRejectsHostileRecords(t *testing.T) {
	good := EncodeRecord(1, VarRec{Index: 1, Handle: 2})
	cases := map[string][]byte{
		"empty":          nil,
		"seq only":       good[:1],
		"unknown kind":   append(appendUvarint(nil, 1), 200),
		"trailing bytes": append(append([]byte(nil), good...), 0xFF),
		"bad bool":       EncodeRecord(1, ConstRec{})[:2+1], // truncated before handle
		"op range":       append(appendUvarint(nil, 1), byte(KindApply), 99, 0, 0, 0),
		"hostile count": append(append(appendUvarint(nil, 1), byte(KindFree)),
			appendUvarint(nil, 1<<40)...),
	}
	for name, payload := range cases {
		if _, err := DecodeRecord(payload); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// segmentBytes renders an in-memory segment: header plus each record in
// its own frame, sequenced densely from base+1.
func segmentBytes(t *testing.T, base uint64, recs ...Record) []byte {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, "s-test", base, Options{Policy: SyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, SegmentName("s-test", base)))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTornTailEveryPrefix truncates a three-record segment at every byte
// boundary: a prefix inside the header is a typed error, any longer
// prefix scans cleanly and yields exactly the records whose frames
// survived whole — the crash-shape contract recovery depends on.
func TestTornTailEveryPrefix(t *testing.T) {
	recs := allKinds()
	data := segmentBytes(t, 0, recs...)
	for n := 0; n <= len(data); n++ {
		st, err := ScanSegment(bytes.NewReader(data[:n]), func(Entry) error { return nil })
		if n < HeaderSize {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("prefix %d: err = %v, want a typed header error", n, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("prefix %d: unexpected error %v", n, err)
		}
		if n == len(data) && (st.Torn || st.Records != len(recs)) {
			t.Fatalf("full segment: records %d torn %v", st.Records, st.Torn)
		}
		if n < len(data) && !st.Torn && st.Records != len(recs) {
			// A shorter prefix may still be frame-aligned (clean EOF); then
			// it must hold a strict prefix of the records.
			if st.Records >= len(recs) {
				t.Fatalf("prefix %d: %d records from a truncated stream", n, st.Records)
			}
		}
	}
}

// TestCorruptionStopsScan flips every byte of the record region in turn;
// the scan must stop at or before the corrupted record, never panic, and
// never deliver more records than the file holds.
func TestCorruptionStopsScan(t *testing.T) {
	recs := allKinds()
	data := segmentBytes(t, 0, recs...)
	for i := HeaderSize; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xA5
		st, err := ScanSegment(bytes.NewReader(mut), func(Entry) error { return nil })
		if err != nil {
			t.Fatalf("flip at %d: scan error %v", i, err)
		}
		if st.Records > len(recs) {
			t.Fatalf("flip at %d: %d records out of %d", i, st.Records, len(recs))
		}
	}
	// Header corruption is a typed error, not a torn tail.
	for i := 0; i < HeaderSize; i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xA5
		if _, err := ScanSegment(bytes.NewReader(mut), func(Entry) error { return nil }); err == nil {
			t.Fatalf("flip at header byte %d: scan accepted a corrupt header", i)
		}
	}
}

func TestAppendAssignsDenseSequences(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "s-seq", 10, Options{Policy: SyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(GCRec{}, GCRec{}, GCRec{}); err != nil {
		t.Fatal(err)
	}
	if got := l.Seq(); got != 13 {
		t.Fatalf("Seq = %d, want 13", got)
	}
	if err := l.Append(CloseRec{}); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	st, err := ScanSegmentFile(filepath.Join(dir, SegmentName("s-seq", 10)), func(e Entry) error {
		seqs = append(seqs, e.Seq)
		return nil
	})
	if err != nil || st.Torn {
		t.Fatalf("scan: %v torn=%v", err, st.Torn)
	}
	if want := []uint64{11, 12, 13, 14}; !reflect.DeepEqual(seqs, want) {
		t.Fatalf("seqs = %v, want %v", seqs, want)
	}
}

func TestRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	var ctr Counters
	l, err := Open(dir, "s-rot", 0, Options{Policy: SyncNone}, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Rotate with nothing appended is a no-op: same single segment.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if segs, _ := ListSegments(dir, "s-rot"); len(segs) != 1 {
		t.Fatalf("no-op rotate created a segment: %v", segs)
	}

	for i := 0; i < 3; i++ {
		if err := l.Append(VarRec{Index: i, Handle: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Rotations.Load(); got != 1 {
		t.Fatalf("Rotations = %d, want 1", got)
	}
	for i := 3; i < 5; i++ {
		if err := l.Append(VarRec{Index: i, Handle: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}

	segs, err := ListSegments(dir, "s-rot")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Base != 0 || segs[1].Base != 3 {
		t.Fatalf("segments = %+v, want bases 0 and 3", segs)
	}

	// The full chain replays all five records from zero.
	var n int
	st, err := ReplayTail(dir, "s-rot", 0, func(Entry) error { n++; return nil })
	if err != nil || st.Gap || n != 5 {
		t.Fatalf("replay: n=%d gap=%v err=%v", n, st.Gap, err)
	}
	// Replaying from mid-first-segment skips the covered prefix.
	st, err = ReplayTail(dir, "s-rot", 2, func(Entry) error { return nil })
	if err != nil || st.Gap || st.Replayed != 3 || st.Skipped != 2 {
		t.Fatalf("partial replay: %+v err=%v", st, err)
	}

	// A checkpoint at seq 3 covers the first segment; truncation removes
	// it but never the active one.
	if err := l.TruncateTo(3); err != nil {
		t.Fatal(err)
	}
	if got := ctr.Truncated.Load(); got != 1 {
		t.Fatalf("Truncated = %d, want 1", got)
	}
	segs, _ = ListSegments(dir, "s-rot")
	if len(segs) != 1 || segs[0].Base != 3 {
		t.Fatalf("segments after truncate = %+v", segs)
	}
	st, err = ReplayTail(dir, "s-rot", 3, func(Entry) error { return nil })
	if err != nil || st.Gap || st.Replayed != 2 {
		t.Fatalf("post-truncate replay: %+v err=%v", st, err)
	}

	// Replaying from zero is now impossible — the chain must report the
	// gap instead of silently serving a partial history.
	st, err = ReplayTail(dir, "s-rot", 0, func(Entry) error { return nil })
	if err != nil || !st.Gap || st.GapBase != 3 {
		t.Fatalf("gap detection: %+v err=%v", st, err)
	}
}

func TestBrokenLatch(t *testing.T) {
	dir := t.TempDir()
	var ctr Counters
	l, err := Open(dir, "s-broke", 0, Options{Policy: SyncNone}, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(GCRec{}); err != nil {
		t.Fatal(err)
	}
	// Yank the fd out from under the log: the write fails, and the rewind
	// (Truncate on a closed file) fails too, so the log must latch broken.
	l.f.Close()
	if err := l.Append(GCRec{}); err == nil {
		t.Fatal("append over a dead fd succeeded")
	}
	if err := l.Append(GCRec{}); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after broken latch: %v, want ErrBroken", err)
	}
	if got := ctr.AppendErrors.Load(); got == 0 {
		t.Fatal("AppendErrors not counted")
	}
	if err := l.Rotate(); !errors.Is(err, ErrBroken) {
		t.Fatalf("rotate on broken log: %v, want ErrBroken", err)
	}
	// The durable prefix is still exactly the acknowledged history.
	st, err := ScanSegmentFile(filepath.Join(dir, SegmentName("s-broke", 0)), func(Entry) error { return nil })
	if err != nil || st.Records != 1 {
		t.Fatalf("surviving prefix: %+v err=%v", st, err)
	}
}

func TestCloseSemantics(t *testing.T) {
	l, err := Open(t.TempDir(), "s-close", 0, Options{Policy: SyncInterval}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(GCRec{}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := l.Append(GCRec{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v, want ErrClosed", err)
	}
}

func TestParseNames(t *testing.T) {
	id, base, ok := ParseSegmentName(SegmentName("s-ab12", 42))
	if !ok || id != "s-ab12" || base != 42 {
		t.Fatalf("segment name roundtrip: %q %d %v", id, base, ok)
	}
	id, seq, ok := ParseSnapshotName(SnapshotName("s-ab12", 7))
	if !ok || id != "s-ab12" || seq != 7 {
		t.Fatalf("snapshot name roundtrip: %q %d %v", id, seq, ok)
	}
	for _, bad := range []string{
		"", "x.wal", "x.123.wal", "x.00000000000000000042.snap",
		"x.0000000000000000004x.wal", "justafile",
	} {
		if _, _, ok := ParseSegmentName(bad); ok {
			t.Errorf("ParseSegmentName(%q) accepted", bad)
		}
	}
	if _, _, ok := ParseSnapshotName("x.00000000000000000042.wal"); ok {
		t.Error("ParseSnapshotName accepted a .wal name")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{
		"": SyncInterval, "interval": SyncInterval,
		"always": SyncAlways, "none": SyncNone,
	} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync"); err == nil {
		t.Error("ParseSyncPolicy accepted garbage")
	}
}

func TestSessionIDs(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"s-bb", "s-aa"} {
		l, err := Open(dir, id, 0, Options{Policy: SyncNone}, nil)
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)
	ids, err := SessionIDs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"s-aa", "s-bb"}) {
		t.Fatalf("ids = %v", ids)
	}
	if ids, err := SessionIDs(filepath.Join(dir, "missing")); err != nil || ids != nil {
		t.Fatalf("missing dir: %v %v", ids, err)
	}
}

// TestOpenResumeAtBase proves the server's recovery attach: after a
// replay ends at sequence N, a fresh segment based at N chains onto the
// surviving history.
func TestOpenResumeAtBase(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, "s-res", 0, Options{Policy: SyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(VarRec{Index: 0, Handle: 1})
	l.Append(VarRec{Index: 1, Handle: 2})
	l.Close()

	l2, err := Open(dir, "s-res", 2, Options{Policy: SyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(VarRec{Index: 2, Handle: 3})
	l2.Close()

	var n int
	st, err := ReplayTail(dir, "s-res", 0, func(e Entry) error {
		n++
		if e.Seq != uint64(n) {
			return corrupt("seq %d at position %d", e.Seq, n)
		}
		return nil
	})
	if err != nil || st.Gap || n != 3 {
		t.Fatalf("resumed chain: n=%d %+v err=%v", n, st, err)
	}
}
