package compiled

import (
	"fmt"

	"bfbdd/internal/core"
	"bfbdd/internal/node"
)

// Compile freezes the subgraph reachable from roots into an immutable
// Func. The kernel is only read — Compile must be serialized against
// mutation exactly like snapshotting (the server runs it on the session
// executor) — and the resulting Func holds no reference to the kernel,
// so it remains valid after the kernel is GC'd, reordered, or closed.
//
// var2level is the manager's variable order (entry v = level of public
// variable v). Because the node order comes from Kernel.LevelMajorOrder,
// compiling the same functions under the same order on any engine yields
// byte-identical artifacts.
func Compile(k *core.Kernel, var2level []int, roots []Root) (*Func, error) {
	L := k.Levels()
	if len(var2level) != L {
		return nil, fmt.Errorf("compiled: var2level has %d entries for %d levels", len(var2level), L)
	}
	level2var := make([]int, L)
	seen := make([]bool, L)
	for v, l := range var2level {
		if l < 0 || l >= L || seen[l] {
			return nil, fmt.Errorf("compiled: variable order is not a permutation of [0,%d)", L)
		}
		level2var[l] = v
		seen[l] = true
	}
	refs := make([]node.Ref, len(roots))
	for i, rt := range roots {
		if !rt.Ref.Valid() {
			return nil, fmt.Errorf("compiled: root %d has invalid ref %v", i, rt.Ref)
		}
		refs[i] = rt.Ref
	}
	order, err := k.LevelMajorOrder(refs)
	if err != nil {
		return nil, err
	}
	if uint64(len(order)) > maxNodes {
		return nil, fmt.Errorf("%w: %d nodes", ErrTooLarge, len(order))
	}

	idx := make(map[node.Ref]uint32, len(order))
	for i, r := range order {
		idx[r] = uint32(i)
	}
	child := func(c node.Ref) uint32 {
		switch {
		case c.IsZero():
			return termZero
		case c.IsOne():
			return termOne
		default:
			return idx[c]
		}
	}

	st := k.Store()
	nodes := make([]packed, len(order))
	var segs []segment
	for i, r := range order {
		lvl := r.Level()
		if len(segs) == 0 || segs[len(segs)-1].level != lvl {
			if len(segs) > 0 {
				segs[len(segs)-1].end = uint32(i)
			}
			segs = append(segs, segment{level: lvl, varIdx: level2var[lvl], start: uint32(i)})
		}
		nd := st.Node(r)
		nodes[i] = packed{lo: child(nd.Low), hi: child(nd.High)}
	}
	if len(segs) > 0 {
		segs[len(segs)-1].end = uint32(len(nodes))
	}

	frs := make([]funcRoot, len(roots))
	for i, rt := range roots {
		frs[i] = funcRoot{id: rt.ID, node: child(rt.Ref)}
	}

	f := &Func{
		numVars:   L,
		nodes:     nodes,
		segs:      segs,
		roots:     frs,
		var2level: append([]int(nil), var2level...),
		level2var: level2var,
	}
	f.buildVarOf()
	return f, nil
}
