package compiled

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// stream hand-assembles a compiled byte stream for hostile-input tests.
type stream struct {
	buf bytes.Buffer
}

func (s *stream) header(flags uint16, numVars, numRoots int, totalNodes uint64) *stream {
	h := header{Version: Version, Flags: flags, NumVars: numVars, NumRoots: numRoots, TotalNodes: totalNodes}
	s.buf.Write(h.encode())
	return s
}

func (s *stream) section(kind byte, payload []byte) *stream {
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	s.buf.Write(hdr[:])
	s.buf.Write(payload)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(payload))
	s.buf.Write(crcb[:])
	return s
}

func uvarints(vs ...uint64) []byte {
	var b []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vs {
		n := binary.PutUvarint(tmp[:], v)
		b = append(b, tmp[:n]...)
	}
	return b
}

func identity(n int) []byte {
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = uint64(i)
	}
	return uvarints(vs...)
}

// TestLoadHostile feeds targeted structural attacks through Load and
// requires the advertised typed error for each.
func TestLoadHostile(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad magic", []byte("NOTAFUNC________________________"), ErrBadMagic},
		{"snapshot magic", []byte("BFBDSNAP________________________"), ErrBadMagic},
		{"header only", (&stream{}).header(FlagDeltaRefs, 2, 0, 0).buf.Bytes(), ErrTruncated},
		{"descending levels", (&stream{}).header(FlagDeltaRefs, 3, 1, 2).
			section(secVarOrder, identity(3)).
			section(secLevel, uvarints(1, 1, 0, 1)).
			section(secLevel, uvarints(0, 1, 0, 1)).buf.Bytes(), ErrCorrupt},
		{"repeated level", (&stream{}).header(FlagDeltaRefs, 3, 1, 2).
			section(secVarOrder, identity(3)).
			section(secLevel, uvarints(0, 1, 0, 1)).
			section(secLevel, uvarints(0, 1, 0, 1)).buf.Bytes(), ErrCorrupt},
		{"level past numvars", (&stream{}).header(FlagDeltaRefs, 2, 0, 1).
			section(secVarOrder, identity(2)).
			section(secLevel, uvarints(5, 1, 0, 1)).buf.Bytes(), ErrCorrupt},
		{"count exceeds payload", (&stream{}).header(FlagDeltaRefs, 2, 0, 1000).
			section(secVarOrder, identity(2)).
			section(secLevel, uvarints(0, 1000, 0, 1)).buf.Bytes(), ErrCorrupt},
		{"count exceeds header total", (&stream{}).header(FlagDeltaRefs, 2, 0, 1).
			section(secVarOrder, identity(2)).
			section(secLevel, uvarints(0, 2, 0, 1, 0, 1)).buf.Bytes(), ErrCorrupt},
		// Node 0's child delta 1 points at node 1 — same segment, same
		// level: must be rejected even though it is forward.
		{"same-segment child", (&stream{}).header(FlagDeltaRefs, 2, 1, 2).
			section(secVarOrder, identity(2)).
			section(secLevel, uvarints(0, 2, 2, 1, 0, 1)).buf.Bytes(), ErrCorrupt},
		// Delta of ^uint64(0)-ish would wrap cur+d into range if added
		// blindly.
		{"wrapping delta", (&stream{}).header(FlagDeltaRefs, 2, 1, 2).
			section(secVarOrder, identity(2)).
			section(secLevel, append(uvarints(0, 1), uvarints(^uint64(0), 1)...)).buf.Bytes(), ErrCorrupt},
		{"raw child out of range", (&stream{}).header(0, 2, 1, 1).
			section(secVarOrder, identity(2)).
			section(secLevel, uvarints(0, 1, 2+5, 1)).buf.Bytes(), ErrCorrupt},
		{"root out of range", (&stream{}).header(FlagDeltaRefs, 1, 1, 1).
			section(secVarOrder, identity(1)).
			section(secLevel, uvarints(0, 1, 0, 1)).
			section(secRoots, uvarints(0, 2+7)).buf.Bytes(), ErrCorrupt},
		{"roots before total reached", (&stream{}).header(FlagDeltaRefs, 1, 0, 5).
			section(secVarOrder, identity(1)).
			section(secRoots, nil).buf.Bytes(), ErrCorrupt},
		{"hostile root count", (&stream{}).header(FlagDeltaRefs, 1, 1<<20, 0).
			section(secVarOrder, identity(1)).
			section(secRoots, uvarints(0, 0)).buf.Bytes(), ErrCorrupt},
		{"missing end", (&stream{}).header(FlagDeltaRefs, 1, 0, 0).
			section(secVarOrder, identity(1)).
			section(secRoots, nil).buf.Bytes(), ErrTruncated},
		{"bad varorder", (&stream{}).header(FlagDeltaRefs, 2, 0, 0).
			section(secVarOrder, uvarints(0, 0)).buf.Bytes(), ErrCorrupt},
		{"trailing varorder bytes", (&stream{}).header(FlagDeltaRefs, 2, 0, 0).
			section(secVarOrder, uvarints(0, 1, 9)).buf.Bytes(), ErrCorrupt},
		{"unknown section", (&stream{}).header(FlagDeltaRefs, 1, 0, 0).
			section(secVarOrder, identity(1)).
			section(99, nil).buf.Bytes(), ErrCorrupt},
		{"huge totalNodes", (&stream{}).header(FlagDeltaRefs, 1, 0, 1<<40).buf.Bytes(), ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Load(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("loaded hostile stream: %+v", f)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}
}

// TestLoadChecksum flips one payload byte and requires ErrChecksum.
func TestLoadChecksum(t *testing.T) {
	data := (&stream{}).header(FlagDeltaRefs, 2, 0, 0).
		section(secVarOrder, identity(2)).
		section(secRoots, nil).
		section(secEnd, nil).buf.Bytes()
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[HeaderSize+5] ^= 0x40 // first varorder payload byte
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("error %v, want ErrChecksum", err)
	}
	// Header corruption is caught by the header CRC.
	bad = append([]byte(nil), data...)
	bad[12] ^= 1
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("error %v, want header ErrChecksum", err)
	}
}

// TestLoadUnreducedStillTerminates loads a structurally valid but
// non-canonical artifact (a node whose children are both Zero) and
// checks every query stays exact and terminates.
func TestLoadUnreducedStillTerminates(t *testing.T) {
	data := (&stream{}).header(FlagDeltaRefs, 2, 1, 2).
		section(secVarOrder, identity(2)).
		section(secLevel, uvarints(0, 1, 2, 2)). // node 0 at level 0: both children node 1
		section(secLevel, uvarints(1, 1, 0, 0)). // node 1 at level 1: both children Zero
		section(secRoots, uvarints(3, 2+0)).
		section(secEnd, nil).buf.Bytes()
	f, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for mask := 0; mask < 4; mask++ {
		a := []bool{mask&1 == 1, mask&2 == 2}
		if f.Eval(0, a) {
			t.Fatalf("unreduced zero function evaluated true at %v", a)
		}
	}
	if got := f.EvalBatch(0, [][]bool{{false, false}, {true, true}}); got[0] || got[1] {
		t.Fatalf("EvalBatch on unreduced zero function: %v", got)
	}
	if c := f.SatCount(0); c.Sign() != 0 {
		t.Fatalf("SatCount on zero function: %v", c)
	}
	if _, ok := f.AnySat(0); ok {
		t.Fatal("AnySat found an assignment for the zero function")
	}
}
