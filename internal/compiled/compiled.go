// Package compiled freezes the subgraph reachable from chosen BDD roots
// into an immutable, position-independent Func artifact built for the
// read path: one flat, packed node array in breadth-first, level-major
// order (the paper's construction layout reused as a serving layout),
// children as forward stream indices, per-level segments. Because a Func
// is immutable after construction, any number of goroutines may evaluate
// it concurrently with no locks, no reference counting, and no
// interaction with the Manager that produced it — artifacts outlive their
// manager entirely.
//
// The wire format mirrors the snapshot format's framing (versioned,
// CRC-checksummed header; kind/length/payload/crc sections; typed,
// panic-free decode for hostile bytes) but inverts the direction: level
// segments appear in strictly ASCENDING level order (top-down, the order
// evaluation walks), and every child reference points strictly forwards
// in the stream — past the end of its own segment — which both encodes
// the BDD's level discipline and guarantees termination of any walk over
// a decoded artifact, hostile or not.
//
// Layout:
//
//	header (32 bytes, fixed):
//	  magic      [8]byte  "BFBDFUNC"
//	  version    uint16
//	  flags      uint16   (bit 0: delta-encoded child refs)
//	  numVars    uint32
//	  numRoots   uint32
//	  totalNodes uint64
//	  headerCRC  uint32   (IEEE CRC-32 of the 28 preceding bytes)
//
//	then sections, each: kind uint8, length uint32 LE, payload, crc uint32
//	(IEEE CRC-32 of payload). Kinds: 1 varorder, 2 level segment, 3 roots,
//	4 end.
//
//	varorder payload: numVars × uvarint(level of variable v) — a
//	  permutation of [0, numVars).
//	level-segment payload: uvarint(level), uvarint(count), then count ×
//	  (uvarint low, uvarint high). Segments appear in strictly increasing
//	  level order. Node stream indices are implicit: 0, 1, 2, … across all
//	  segments.
//	roots payload: numRoots × (uvarint id, uvarint node), node raw-encoded.
//	end payload: empty; marks a complete stream.
//
// Child/root encoding: 0 is the Zero terminal, 1 is the One terminal.
// With delta refs (flag bit 0), a child of the node at stream index cur
// encodes as 1 + (child - cur) — children are strictly forward, so the
// delta is ≥ 1 and the encoding ≥ 2, disjoint from the terminals.
// Without delta refs, and always in the roots section, a node encodes as
// 2 + child.
package compiled

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"bfbdd/internal/node"
)

// Magic identifies a compiled-function stream.
const Magic = "BFBDFUNC"

// Version is the format version this package writes.
const Version = 1

// HeaderSize is the byte length of the fixed header.
const HeaderSize = 32

// FlagDeltaRefs marks streams whose level segments delta-encode child
// references against the current node's stream index.
const FlagDeltaRefs = 1 << 0

// Section kinds.
const (
	secVarOrder = 1
	secLevel    = 2
	secRoots    = 3
	secEnd      = 4
)

// maxSectionLen bounds a single section payload; longer claims are
// rejected as corrupt before any allocation of that size is attempted.
const maxSectionLen = 1 << 30

// Terminal sentinels in the in-memory packed array. They sit at the top
// of the uint32 range so that `child >= termOne` is the terminal test and
// every real index stays below both.
const (
	termZero = ^uint32(0)
	termOne  = ^uint32(0) - 1
)

// maxNodes bounds an artifact's node count so indices never collide with
// the terminal sentinels.
const maxNodes = 1 << 31

// Typed decode errors. Every Load failure wraps exactly one of these.
var (
	// ErrBadMagic means the stream does not start with the artifact magic.
	ErrBadMagic = errors.New("compiled: bad magic")
	// ErrVersion means the stream's version or flags are not supported.
	ErrVersion = errors.New("compiled: unsupported version")
	// ErrChecksum means a section's CRC does not match its payload.
	ErrChecksum = errors.New("compiled: checksum mismatch")
	// ErrTruncated means the stream ended before the end-of-stream marker.
	ErrTruncated = errors.New("compiled: truncated stream")
	// ErrCorrupt means the stream is structurally invalid (bad varint,
	// out-of-order segment, backward reference, count mismatch, …).
	ErrCorrupt = errors.New("compiled: corrupt stream")
	// ErrTooLarge means the graph exceeds the format's limits.
	ErrTooLarge = errors.New("compiled: graph too large for format")
)

// corrupt wraps ErrCorrupt with detail.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// eofErr converts io EOF errors into ErrTruncated, passing others through.
func eofErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

// header is the decoded fixed header of a compiled stream.
type header struct {
	Version    uint16
	Flags      uint16
	NumVars    int
	NumRoots   int
	TotalNodes uint64
}

// encode renders the header, including its trailing CRC.
func (h header) encode() []byte {
	b := make([]byte, HeaderSize)
	copy(b, Magic)
	binary.LittleEndian.PutUint16(b[8:], h.Version)
	binary.LittleEndian.PutUint16(b[10:], h.Flags)
	binary.LittleEndian.PutUint32(b[12:], uint32(h.NumVars))
	binary.LittleEndian.PutUint32(b[16:], uint32(h.NumRoots))
	binary.LittleEndian.PutUint64(b[20:], h.TotalNodes)
	binary.LittleEndian.PutUint32(b[28:], crc32.ChecksumIEEE(b[:28]))
	return b
}

// parseHeader decodes and validates a fixed header.
func parseHeader(b []byte) (header, error) {
	if len(b) < HeaderSize {
		return header{}, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	if string(b[:8]) != Magic {
		return header{}, ErrBadMagic
	}
	if got, want := binary.LittleEndian.Uint32(b[28:32]), crc32.ChecksumIEEE(b[:28]); got != want {
		return header{}, fmt.Errorf("%w: header", ErrChecksum)
	}
	h := header{
		Version:    binary.LittleEndian.Uint16(b[8:]),
		Flags:      binary.LittleEndian.Uint16(b[10:]),
		NumVars:    int(binary.LittleEndian.Uint32(b[12:])),
		NumRoots:   int(binary.LittleEndian.Uint32(b[16:])),
		TotalNodes: binary.LittleEndian.Uint64(b[20:]),
	}
	if h.Version != Version {
		return header{}, fmt.Errorf("%w: version %d", ErrVersion, h.Version)
	}
	if h.Flags&^FlagDeltaRefs != 0 {
		return header{}, fmt.Errorf("%w: unknown flags %#x", ErrVersion, h.Flags)
	}
	if h.NumVars >= node.MaxLevels {
		return header{}, corrupt("variable count %d out of range", h.NumVars)
	}
	if h.TotalNodes > maxNodes {
		return header{}, fmt.Errorf("%w: %d nodes", ErrTooLarge, h.TotalNodes)
	}
	return h, nil
}

// Root labels one entry point into the compiled graph. IDs are opaque to
// the format; the service layer uses them to carry its wire handle
// numbers into the artifact.
type Root struct {
	ID  uint64
	Ref node.Ref
}

// packed is one node of the flat array: the stream indices (or terminal
// sentinels) of the low and high children.
type packed struct {
	lo, hi uint32
}

// segment describes one contiguous run of nodes sharing a level.
// Segments are stored in ascending level order and their [start, end)
// ranges tile [0, len(nodes)).
type segment struct {
	level  int
	varIdx int // public variable index decided at this level
	start  uint32
	end    uint32
}

// funcRoot is one labeled root of a Func: its external ID and the stream
// index (or terminal sentinel) it points at.
type funcRoot struct {
	id   uint64
	node uint32
}
