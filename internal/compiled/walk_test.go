package compiled

import (
	"math/rand"
	"testing"
)

// synthLayered builds a valid in-memory Func bigger than the sweep
// threshold: width nodes per variable, children drawn uniformly from
// strictly deeper levels or the terminals, so walks skip levels at
// irregular depths — the shape the lockstep lane walk has to get right.
func synthLayered(numVars, width int, seed int64) *Func {
	rng := rand.New(rand.NewSource(seed))
	total := numVars * width
	f := &Func{numVars: numVars}
	f.nodes = make([]packed, total)
	f.var2level = make([]int, numVars)
	f.level2var = make([]int, numVars)
	for v := 0; v < numVars; v++ {
		f.var2level[v] = v
		f.level2var[v] = v
		start := uint32(v * width)
		end := start + uint32(width)
		f.segs = append(f.segs, segment{level: v, varIdx: v, start: start, end: end})
		for i := start; i < end; i++ {
			f.nodes[i] = packed{lo: synthChild(rng, int(end), total), hi: synthChild(rng, int(end), total)}
		}
	}
	for r := 0; r < 8; r++ {
		f.roots = append(f.roots, funcRoot{id: uint64(r), node: uint32(rng.Intn(width))})
	}
	f.buildVarOf()
	return f
}

// synthChild picks a strictly forward child index or a terminal.
func synthChild(rng *rand.Rand, segEnd, total int) uint32 {
	if segEnd >= total || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return termZero
		}
		return termOne
	}
	return uint32(segEnd + rng.Intn(total-segEnd))
}

// TestWalkLanesMatchesSingleWalk drives the large-graph batch path —
// too many nodes for the bit-parallel sweep, so EvalBatch dispatches to
// evalWalkLanes — and requires byte-identical answers from the single
// walk, on full lane groups, the ragged tail, and sub-lane remainders.
func TestWalkLanesMatchesSingleWalk(t *testing.T) {
	f := synthLayered(12, 400, 1)
	if len(f.nodes) <= f.sweepMaxNodes() {
		t.Fatalf("synthetic graph too small to exercise the lane path: %d <= %d",
			len(f.nodes), f.sweepMaxNodes())
	}
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{sweepMinBatch, 67, 256} {
		batch := make([][]bool, n)
		for i := range batch {
			batch[i] = make([]bool, f.numVars)
			for v := range batch[i] {
				batch[i][v] = rng.Intn(2) == 1
			}
		}
		for root := range f.roots {
			got := f.EvalBatch(root, batch)
			for j, a := range batch {
				if want := f.Eval(root, a); got[j] != want {
					t.Fatalf("root %d batch %d assignment %d: lanes %v single walk %v",
						root, n, j, got[j], want)
				}
			}
		}
	}
}

// TestWalkLanesNoVarOf pins the fallback: a Func whose variable count
// is declared too wide for the uint16 table must still answer batches
// through the per-assignment walk.
func TestWalkLanesNoVarOf(t *testing.T) {
	f := synthLayered(12, 400, 3)
	f.varOf = nil // as if numVars did not fit uint16
	rng := rand.New(rand.NewSource(4))
	batch := make([][]bool, 64)
	for i := range batch {
		batch[i] = make([]bool, f.numVars)
		for v := range batch[i] {
			batch[i][v] = rng.Intn(2) == 1
		}
	}
	got := f.EvalBatch(0, batch)
	for j, a := range batch {
		if want := f.Eval(0, a); got[j] != want {
			t.Fatalf("assignment %d: batch %v single walk %v", j, got[j], want)
		}
	}
}
