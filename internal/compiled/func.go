package compiled

import (
	"math/big"
	"sync"
)

// Func is an immutable compiled function artifact: a flat, level-major
// packed node array plus its per-level segment table, variable order, and
// labeled roots. All methods are safe for unlimited concurrent use; none
// mutates the receiver (EvalBatch's sweep scratch comes from an internal
// pool and is self-cleaning).
type Func struct {
	numVars   int
	nodes     []packed  // level-major, top-down; children point forward
	segs      []segment // ascending level order, tiling [0, len(nodes))
	varOf     []uint16  // per-node variable index; see buildVarOf
	roots     []funcRoot
	var2level []int
	level2var []int
	scratch   sync.Pool // *[]uint64, len(nodes), zeroed between uses
}

// buildVarOf precomputes the per-node variable table that the eval walks
// index instead of scanning the segment table per step. In-memory only —
// never part of the wire format — and rebuilt by both Compile and Load.
// Left nil when the variable count does not fit uint16; consumers fall
// back to the segment cursor.
func (f *Func) buildVarOf() {
	if f.numVars > 1<<16-1 {
		return
	}
	v := make([]uint16, len(f.nodes))
	for _, s := range f.segs {
		for i := s.start; i < s.end; i++ {
			v[i] = uint16(s.varIdx)
		}
	}
	f.varOf = v
}

// NumVars returns the artifact's variable count.
func (f *Func) NumVars() int { return f.numVars }

// NumNodes returns the number of packed (non-terminal) nodes.
func (f *Func) NumNodes() int { return len(f.nodes) }

// NumRoots returns the number of labeled roots.
func (f *Func) NumRoots() int { return len(f.roots) }

// RootIDs returns the labels of the artifact's roots, in root order.
func (f *Func) RootIDs() []uint64 {
	ids := make([]uint64, len(f.roots))
	for i, rt := range f.roots {
		ids[i] = rt.id
	}
	return ids
}

// RootByID returns the root index carrying the given ID (the first, if
// IDs repeat) and whether one exists.
func (f *Func) RootByID(id uint64) (int, bool) {
	for i, rt := range f.roots {
		if rt.id == id {
			return i, true
		}
	}
	return 0, false
}

// Var2Level returns a copy of the artifact's variable order: entry v is
// the level of public variable v.
func (f *Func) Var2Level() []int {
	return append([]int(nil), f.var2level...)
}

// RootSize returns the number of nodes reachable from root — the
// artifact may pack several roots sharing structure, so this can be less
// than NumNodes.
func (f *Func) RootSize(root int) int {
	f.checkRoot(root)
	r := f.roots[root].node
	if r >= termOne {
		return 0
	}
	reach := make([]bool, len(f.nodes))
	reach[r] = true
	n := 0
	for i := int(r); i < len(f.nodes); i++ {
		if !reach[i] {
			continue
		}
		n++
		if c := f.nodes[i].lo; c < termOne {
			reach[c] = true
		}
		if c := f.nodes[i].hi; c < termOne {
			reach[c] = true
		}
	}
	return n
}

// MemBytes returns the approximate resident size of the artifact, used
// by the server's artifact byte pool.
func (f *Func) MemBytes() int64 {
	return int64(len(f.nodes))*8 +
		int64(len(f.varOf))*2 +
		int64(len(f.segs))*32 +
		int64(len(f.roots))*16 +
		int64(len(f.var2level)+len(f.level2var))*8 + 128
}

func (f *Func) checkRoot(root int) {
	if root < 0 || root >= len(f.roots) {
		panic("bfbdd: compiled root index out of range")
	}
}

func (f *Func) checkAssignment(a []bool) {
	if len(a) != f.numVars {
		panic("bfbdd: assignment length does not match variable count")
	}
}

// segOf returns the index of the segment containing stream index i,
// starting the scan at hint (which must be ≤ the true segment index).
func (f *Func) segOf(i uint32, hint int) int {
	for i >= f.segs[hint].end {
		hint++
	}
	return hint
}

// Eval evaluates root under the given assignment (indexed by public
// variable). It allocates nothing: the walk follows forward indices
// through the flat array, one cache line candidate per step, advancing a
// monotone segment cursor to find each node's variable. It panics, like
// BDD.Eval, if the assignment length is wrong or root is out of range.
func (f *Func) Eval(root int, assignment []bool) bool {
	f.checkRoot(root)
	f.checkAssignment(assignment)
	return f.evalFrom(f.roots[root].node, assignment)
}

func (f *Func) evalFrom(c uint32, assignment []bool) bool {
	if vo := f.varOf; vo != nil {
		for c < termOne {
			nd := f.nodes[c]
			var b uint32
			if assignment[vo[c]] {
				b = 1
			}
			// Branchless select: on random assignments the hi/lo branch
			// is a coin flip, and the mispredict costs more than the
			// blend.
			c = nd.lo ^ ((nd.lo ^ nd.hi) & -b)
		}
		return c == termOne
	}
	si := 0
	for c < termOne {
		si = f.segOf(c, si)
		nd := f.nodes[c]
		var b uint32
		if assignment[f.segs[si].varIdx] {
			b = 1
		}
		c = nd.lo ^ ((nd.lo ^ nd.hi) & -b)
	}
	return c == termOne
}

// Sweep-vs-walk crossover. The top-down sweep touches every node at or
// after the root once per 64 assignments — bandwidth-bound, sequential —
// while the per-assignment walk costs ~depth dependent loads each —
// latency-bound. The sweep wins when the graph is small enough that
// O(nodes)/64 beats O(depth), i.e. when nodes ≲ 64·depth·(miss ratio);
// 128·numVars is a conservative proxy that keeps the sweep on graphs
// that fit cache-resident scratch.
const sweepMinBatch = 16

func (f *Func) sweepMaxNodes() int { return 128 * f.numVars }

// EvalBatch evaluates root under every assignment and returns one result
// per assignment, in order. For batches of at least sweepMinBatch on
// graphs within the sweep threshold it uses a single top-down level
// sweep per 64-assignment group: each live node holds a bitmask of the
// assignments currently at it; the mask is split by the node's variable
// word and pushed to the children, so a group costs one pass over the
// reachable array regardless of batch width. Batches on larger graphs
// run the lockstep lane walk (several assignments advance side by side —
// see evalWalkLanes), and tiny batches fall back to the pointer walk per
// assignment. All paths are exact, so answers are byte-identical
// regardless of which path runs.
func (f *Func) EvalBatch(root int, assignments [][]bool) []bool {
	f.checkRoot(root)
	for _, a := range assignments {
		f.checkAssignment(a)
	}
	out := make([]bool, len(assignments))
	r := f.roots[root].node
	if r >= termOne {
		if r == termOne {
			for i := range out {
				out[i] = true
			}
		}
		return out
	}
	if len(assignments) >= sweepMinBatch {
		if len(f.nodes) <= f.sweepMaxNodes() {
			f.evalSweep(r, assignments, out)
		} else if f.varOf != nil {
			f.evalWalkLanes(r, assignments, out)
		} else {
			for i, a := range assignments {
				out[i] = f.evalFrom(r, a)
			}
		}
		return out
	}
	for i, a := range assignments {
		out[i] = f.evalFrom(r, a)
	}
	return out
}

// evalWalkLanes walks four assignments through the packed array in
// lockstep. A single depth walk is a serialized chain of dependent
// loads — each step's address comes from the previous load — so on
// graphs too large for the bit-parallel sweep it is bound by cache
// latency, not bandwidth or compute. Interleaving independent walks
// gives the CPU several chains to overlap, hiding most of that latency.
// The per-node varOf table supplies each step's variable with one
// indexed load instead of a segment-cursor scan, and the hi/lo select
// is the same branchless blend as evalFrom. Lanes that reach a terminal
// idle behind a predictable guard until the slowest lane finishes;
// children point strictly forward (a Load invariant), so every lane
// terminates even on hostile-but-valid artifacts. The lane bodies are
// spelled out because the compiler does not unroll loops, and keeping
// each lane's cursor and row in registers is the point.
func (f *Func) evalWalkLanes(root uint32, assignments [][]bool, out []bool) {
	nodes, vo := f.nodes, f.varOf
	n := len(assignments)
	i := 0
	for ; i+4 <= n; i += 4 {
		a0, a1, a2, a3 := assignments[i], assignments[i+1], assignments[i+2], assignments[i+3]
		c0, c1, c2, c3 := root, root, root, root
		for c0 < termOne || c1 < termOne || c2 < termOne || c3 < termOne {
			if c0 < termOne {
				nd := nodes[c0]
				var b uint32
				if a0[vo[c0]] {
					b = 1
				}
				c0 = nd.lo ^ ((nd.lo ^ nd.hi) & -b)
			}
			if c1 < termOne {
				nd := nodes[c1]
				var b uint32
				if a1[vo[c1]] {
					b = 1
				}
				c1 = nd.lo ^ ((nd.lo ^ nd.hi) & -b)
			}
			if c2 < termOne {
				nd := nodes[c2]
				var b uint32
				if a2[vo[c2]] {
					b = 1
				}
				c2 = nd.lo ^ ((nd.lo ^ nd.hi) & -b)
			}
			if c3 < termOne {
				nd := nodes[c3]
				var b uint32
				if a3[vo[c3]] {
					b = 1
				}
				c3 = nd.lo ^ ((nd.lo ^ nd.hi) & -b)
			}
		}
		out[i] = c0 == termOne
		out[i+1] = c1 == termOne
		out[i+2] = c2 == termOne
		out[i+3] = c3 == termOne
	}
	for ; i < n; i++ {
		out[i] = f.evalFrom(root, assignments[i])
	}
}

func (f *Func) getScratch() []uint64 {
	if v := f.scratch.Get(); v != nil {
		return *(v.(*[]uint64))
	}
	return make([]uint64, len(f.nodes))
}

func (f *Func) putScratch(s []uint64) {
	f.scratch.Put(&s)
}

// evalSweep is the bit-parallel path: 64 assignments per uint64 word.
// scratch[i] is the set of in-flight assignments whose walk is currently
// at node i. Processing indices in ascending order visits every node a
// mask was pushed to (children are strictly forward), and each visit
// clears its mask — so scratch returns to all-zero by the end of each
// group and can be pooled without an O(n) wipe.
func (f *Func) evalSweep(root uint32, assignments [][]bool, out []bool) {
	scratch := f.getScratch()
	defer f.putScratch(scratch)
	vw := make([]uint64, f.numVars)
	rootSeg := f.segOf(root, 0)
	for g := 0; g < len(assignments); g += 64 {
		n := min(64, len(assignments)-g)
		full := ^uint64(0)
		if n < 64 {
			full = 1<<uint(n) - 1
		}
		for v := range vw {
			vw[v] = 0
		}
		for j := 0; j < n; j++ {
			for v, b := range assignments[g+j] {
				if b {
					vw[v] |= 1 << uint(j)
				}
			}
		}
		var ones uint64
		scratch[root] = full
		si := rootSeg
		for i := root; i < uint32(len(f.nodes)); i++ {
			m := scratch[i]
			if m == 0 {
				continue
			}
			scratch[i] = 0
			si = f.segOf(i, si)
			hiM := m & vw[f.segs[si].varIdx]
			loM := m &^ hiM
			nd := f.nodes[i]
			if loM != 0 {
				switch nd.lo {
				case termOne:
					ones |= loM
				case termZero:
				default:
					scratch[nd.lo] |= loM
				}
			}
			if hiM != 0 {
				switch nd.hi {
				case termOne:
					ones |= hiM
				case termZero:
				default:
					scratch[nd.hi] |= hiM
				}
			}
		}
		for j := 0; j < n; j++ {
			out[g+j] = ones>>uint(j)&1 == 1
		}
	}
}

// SatCount returns the number of satisfying assignments of root over all
// NumVars variables, matching Manager.SatCount exactly. One bottom-up
// pass over the packed array: a node at level l counts
// cnt(lo)·2^(lvl(lo)−l−1) + cnt(hi)·2^(lvl(hi)−l−1) with terminal
// children at pseudo-level NumVars, and the root's count is scaled by
// 2^rootLevel for the variables decided above it.
func (f *Func) SatCount(root int) *big.Int {
	f.checkRoot(root)
	r := f.roots[root].node
	if r == termZero {
		return new(big.Int)
	}
	if r == termOne {
		return new(big.Int).Lsh(big.NewInt(1), uint(f.numVars))
	}
	lvl := f.levelTable()
	one := big.NewInt(1)
	counts := make([]big.Int, len(f.nodes))
	childCount := func(c uint32) *big.Int {
		switch c {
		case termZero:
			return nil
		case termOne:
			return one
		default:
			return &counts[c]
		}
	}
	childLevel := func(c uint32) int {
		if c >= termOne {
			return f.numVars
		}
		return int(lvl[c])
	}
	for si := len(f.segs) - 1; si >= 0; si-- {
		s := f.segs[si]
		for i := int(s.end) - 1; i >= int(s.start); i-- {
			nd := f.nodes[i]
			var sum big.Int
			if c := childCount(nd.lo); c != nil {
				sum.Lsh(c, uint(childLevel(nd.lo)-s.level-1))
			}
			if c := childCount(nd.hi); c != nil {
				var t big.Int
				t.Lsh(c, uint(childLevel(nd.hi)-s.level-1))
				sum.Add(&sum, &t)
			}
			counts[i] = sum
		}
	}
	return new(big.Int).Lsh(&counts[r], uint(lvl[r]))
}

// levelTable expands the segment table into a per-node level lookup.
func (f *Func) levelTable() []int32 {
	lvl := make([]int32, len(f.nodes))
	for _, s := range f.segs {
		for i := s.start; i < s.end; i++ {
			lvl[i] = int32(s.level)
		}
	}
	return lvl
}

// AnySat returns a satisfying assignment of root as a partial map keyed
// by public variable index (variables absent from the map are don't-
// cares), or ok=false when root is the constant Zero. Unlike a greedy
// low-first walk, AnySat first computes per-node satisfiability bottom-up
// and then descends only into satisfiable children, so it is exact even
// for loaded artifacts that are valid but not fully reduced.
func (f *Func) AnySat(root int) (map[int]bool, bool) {
	f.checkRoot(root)
	r := f.roots[root].node
	if r == termZero {
		return nil, false
	}
	assignment := make(map[int]bool)
	if r == termOne {
		return assignment, true
	}
	sat := make([]bool, len(f.nodes))
	childSat := func(c uint32) bool {
		switch c {
		case termZero:
			return false
		case termOne:
			return true
		default:
			return sat[c]
		}
	}
	for i := len(f.nodes) - 1; i >= 0; i-- {
		sat[i] = childSat(f.nodes[i].lo) || childSat(f.nodes[i].hi)
	}
	if !sat[r] {
		return nil, false
	}
	si := 0
	for c := r; c < termOne; {
		si = f.segOf(c, si)
		v := f.segs[si].varIdx
		if childSat(f.nodes[c].lo) {
			assignment[v] = false
			c = f.nodes[c].lo
		} else {
			assignment[v] = true
			c = f.nodes[c].hi
		}
	}
	return assignment, true
}
