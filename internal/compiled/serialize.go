package compiled

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Serialize writes the artifact in the compiled wire format with
// delta-encoded child references. The byte stream is a deterministic
// function of the artifact's contents, so equal Funcs serialize to equal
// bytes — the property the oracle uses to compare engines.
func (f *Func) Serialize(w io.Writer) error {
	return f.serialize(w, false)
}

// SerializeRaw writes the artifact without delta-encoding child
// references (flag bit 0 clear): larger but flatter, for format
// debugging and encoding ablations. Load accepts both transparently.
func (f *Func) SerializeRaw(w io.Writer) error {
	return f.serialize(w, true)
}

func (f *Func) serialize(w io.Writer, raw bool) error {
	flags := uint16(FlagDeltaRefs)
	if raw {
		flags = 0
	}
	bw := bufio.NewWriter(w)
	hdr := header{
		Version:    Version,
		Flags:      flags,
		NumVars:    f.numVars,
		NumRoots:   len(f.roots),
		TotalNodes: uint64(len(f.nodes)),
	}
	if _, err := bw.Write(hdr.encode()); err != nil {
		return err
	}

	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}

	for _, l := range f.var2level {
		putUvarint(uint64(l))
	}
	if err := writeSection(bw, secVarOrder, buf.Bytes()); err != nil {
		return err
	}

	encChild := func(cur uint32, c uint32) uint64 {
		switch {
		case c == termZero:
			return 0
		case c == termOne:
			return 1
		case raw:
			return 2 + uint64(c)
		default:
			return 1 + uint64(c) - uint64(cur)
		}
	}

	for _, s := range f.segs {
		buf.Reset()
		putUvarint(uint64(s.level))
		putUvarint(uint64(s.end - s.start))
		for i := s.start; i < s.end; i++ {
			putUvarint(encChild(i, f.nodes[i].lo))
			putUvarint(encChild(i, f.nodes[i].hi))
		}
		if err := writeSection(bw, secLevel, buf.Bytes()); err != nil {
			return err
		}
	}

	buf.Reset()
	for _, rt := range f.roots {
		putUvarint(rt.id)
		switch rt.node {
		case termZero:
			putUvarint(0)
		case termOne:
			putUvarint(1)
		default:
			putUvarint(2 + uint64(rt.node))
		}
	}
	if err := writeSection(bw, secRoots, buf.Bytes()); err != nil {
		return err
	}
	if err := writeSection(bw, secEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// writeSection emits one kind/length/payload/crc section.
func writeSection(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > maxSectionLen {
		return ErrTooLarge
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crcb[:])
	return err
}

// Load decodes a compiled artifact from r. Malformed input of any kind —
// truncated, bit-flipped, or adversarial — yields a typed error (never a
// panic), and no allocation is proportional to a hostile length claim:
// sections are read in bounded chunks, per-segment node counts are
// checked against the bytes actually present, and the node array grows
// by append against the payload actually decoded.
//
// Load re-validates the structural invariants evaluation depends on:
// segment levels strictly ascend, every child reference lands strictly
// past the end of its own segment (deeper level, forward progress), and
// the segment totals match the header. A Func returned by Load is
// therefore safe to evaluate concurrently like any compiled one, even if
// the bytes came from an untrusted peer.
func Load(r io.Reader) (*Func, error) {
	var hb [HeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return nil, eofErr(err)
	}
	hdr, err := parseHeader(hb[:])
	if err != nil {
		return nil, err
	}
	delta := hdr.Flags&FlagDeltaRefs != 0

	ld := loader{r: r}
	kind, payload, err := ld.readSection()
	if err != nil {
		return nil, err
	}
	if kind != secVarOrder {
		return nil, corrupt("expected variable-order section, got kind %d", kind)
	}
	p := payloadReader{b: payload}
	var2level := make([]int, hdr.NumVars)
	level2var := make([]int, hdr.NumVars)
	seen := make([]bool, hdr.NumVars)
	for v := range var2level {
		lv, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if lv >= uint64(hdr.NumVars) || seen[lv] {
			return nil, corrupt("variable order is not a permutation of [0,%d)", hdr.NumVars)
		}
		var2level[v] = int(lv)
		level2var[lv] = v
		seen[lv] = true
	}
	if !p.empty() {
		return nil, corrupt("trailing bytes in variable-order section")
	}

	nodes := make([]packed, 0, min(hdr.TotalNodes, 1<<20))
	var segs []segment
	prevLevel := -1
	for {
		kind, payload, err := ld.readSection()
		if err != nil {
			return nil, err
		}
		switch kind {
		case secLevel:
			p := payloadReader{b: payload}
			lvlU, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			if lvlU <= uint64(prevLevel) && prevLevel >= 0 || lvlU >= uint64(hdr.NumVars) {
				return nil, corrupt("level segment %d out of order (must ascend above %d, below %d)",
					lvlU, prevLevel, hdr.NumVars)
			}
			lvl := int(lvlU)
			count, err := p.uvarint()
			if err != nil {
				return nil, err
			}
			// Each node costs at least two payload bytes; this bound stops
			// hostile counts before any proportional allocation.
			if count == 0 || count > uint64(len(payload))/2 {
				return nil, corrupt("level %d claims %d nodes in %d payload bytes", lvl, count, len(payload))
			}
			base := uint64(len(nodes))
			if base+count > hdr.TotalNodes {
				return nil, corrupt("more nodes than the header's total %d", hdr.TotalNodes)
			}
			segEnd := base + count
			for i := uint64(0); i < count; i++ {
				lo, err := p.child(base+i, segEnd, hdr.TotalNodes, delta)
				if err != nil {
					return nil, err
				}
				hi, err := p.child(base+i, segEnd, hdr.TotalNodes, delta)
				if err != nil {
					return nil, err
				}
				nodes = append(nodes, packed{lo: lo, hi: hi})
			}
			if !p.empty() {
				return nil, corrupt("trailing bytes in level %d segment", lvl)
			}
			segs = append(segs, segment{
				level:  lvl,
				varIdx: level2var[lvl],
				start:  uint32(base),
				end:    uint32(segEnd),
			})
			prevLevel = lvl

		case secRoots:
			if uint64(len(nodes)) != hdr.TotalNodes {
				return nil, corrupt("stream has %d nodes, header promised %d", len(nodes), hdr.TotalNodes)
			}
			p := payloadReader{b: payload}
			// Each root costs at least two payload bytes (id and encoding
			// uvarints); this bound stops a hostile NumRoots before any
			// proportional allocation.
			if uint64(hdr.NumRoots)*2 > uint64(len(payload)) {
				return nil, corrupt("header claims %d roots in %d payload bytes", hdr.NumRoots, len(payload))
			}
			roots := make([]funcRoot, 0, hdr.NumRoots)
			for i := 0; i < hdr.NumRoots; i++ {
				id, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				enc, err := p.uvarint()
				if err != nil {
					return nil, err
				}
				var n uint32
				switch enc {
				case 0:
					n = termZero
				case 1:
					n = termOne
				default:
					s := enc - 2
					if s >= uint64(len(nodes)) {
						return nil, corrupt("root %d references node %d of %d", i, s, len(nodes))
					}
					n = uint32(s)
				}
				roots = append(roots, funcRoot{id: id, node: n})
			}
			if !p.empty() {
				return nil, corrupt("trailing bytes in roots section")
			}
			kind, payload, err := ld.readSection()
			if err != nil {
				return nil, err
			}
			if kind != secEnd || len(payload) != 0 {
				return nil, corrupt("missing end-of-stream section")
			}
			f := &Func{
				numVars:   hdr.NumVars,
				nodes:     nodes,
				segs:      segs,
				roots:     roots,
				var2level: var2level,
				level2var: level2var,
			}
			f.buildVarOf()
			return f, nil

		default:
			return nil, corrupt("unexpected section kind %d", kind)
		}
	}
}

// loader reads framed sections from a stream.
type loader struct {
	r io.Reader
}

// readSection reads one kind/length/payload/crc section. The payload is
// read in bounded chunks so a hostile length field cannot force a large
// allocation beyond the bytes actually present.
func (ld *loader) readSection() (kind byte, payload []byte, err error) {
	var hb [5]byte
	if _, err := io.ReadFull(ld.r, hb[:]); err != nil {
		return 0, nil, eofErr(err)
	}
	kind = hb[0]
	n := binary.LittleEndian.Uint32(hb[1:])
	if n > maxSectionLen {
		return 0, nil, corrupt("section length %d exceeds limit", n)
	}
	payload = make([]byte, 0, min(int(n), 64<<10))
	for remaining := int(n); remaining > 0; {
		c := min(remaining, 64<<10)
		start := len(payload)
		payload = append(payload, make([]byte, c)...)
		if _, err := io.ReadFull(ld.r, payload[start:]); err != nil {
			return 0, nil, eofErr(err)
		}
		remaining -= c
	}
	var crcb [4]byte
	if _, err := io.ReadFull(ld.r, crcb[:]); err != nil {
		return 0, nil, eofErr(err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcb[:]) {
		return 0, nil, fmt.Errorf("%w: section kind %d", ErrChecksum, kind)
	}
	return kind, payload, nil
}

// payloadReader is a varint cursor over one section's payload.
type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, corrupt("bad varint at payload offset %d", p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) empty() bool { return p.off == len(p.b) }

// child decodes one child reference for the node at stream index cur.
// segEnd is the exclusive end of the current segment, which is also the
// inclusive lower bound for non-terminal children: a valid child lives at
// a strictly deeper level, i.e. strictly past this segment. total bounds
// the stream's node count (later segments may not have been decoded yet,
// but the roots section verifies the total is reached).
func (p *payloadReader) child(cur, segEnd, total uint64, delta bool) (uint32, error) {
	enc, err := p.uvarint()
	if err != nil {
		return 0, err
	}
	switch enc {
	case 0:
		return termZero, nil
	case 1:
		return termOne, nil
	}
	var s uint64
	if delta {
		d := enc - 1
		if d >= total {
			// Reject before adding: a near-2^64 delta must not wrap cur+d
			// back into the valid range.
			return 0, corrupt("node %d child delta %d exceeds the stream", cur, d)
		}
		s = cur + d
	} else {
		s = enc - 2
	}
	if s < segEnd || s >= total {
		return 0, corrupt("node %d child %d escapes the forward range [%d,%d)", cur, s, segEnd, total)
	}
	return uint32(s), nil
}
