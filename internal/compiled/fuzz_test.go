package compiled_test

import (
	"bytes"
	"errors"
	"testing"

	"bfbdd"
	"bfbdd/internal/compiled"
)

// seedArtifacts builds a few valid compiled streams of different shapes
// so the fuzzer starts from structurally interesting corpus entries.
func seedArtifacts(f *testing.F) [][]byte {
	f.Helper()
	var out [][]byte

	add := func(m *bfbdd.Manager, raw bool, roots ...*bfbdd.BDD) {
		cf, err := m.Compile(roots...)
		if err != nil {
			f.Fatalf("seed compile: %v", err)
		}
		var buf bytes.Buffer
		if raw {
			err = cf.SerializeRaw(&buf)
		} else {
			err = cf.Serialize(&buf)
		}
		if err != nil {
			f.Fatalf("seed serialize: %v", err)
		}
		out = append(out, buf.Bytes())
		m.Close()
	}

	m := bfbdd.New(6)
	add(m, false, m.Var(0).And(m.Var(3)).Or(m.Var(5).Not()))

	m = bfbdd.New(4)
	add(m, false) // no roots

	m = bfbdd.New(3)
	add(m, false, m.Zero(), m.One()) // terminal-only roots

	m = bfbdd.New(8)
	add(m, true, m.Var(1).Xor(m.Var(6)).Implies(m.Var(2))) // raw refs
	return out
}

// FuzzCompiledLoad feeds arbitrary bytes through compiled.Load. It must
// never panic and never allocate proportionally to hostile length
// claims; failures must be one of the package's typed errors. When a
// stream does decode, the resulting Func must be safely evaluable and
// must survive a serialize/reload cycle with identical answers.
func FuzzCompiledLoad(f *testing.F) {
	for _, s := range seedArtifacts(f) {
		f.Add(s)
	}
	f.Add([]byte(compiled.Magic))
	f.Add([]byte{})

	typed := []error{
		compiled.ErrBadMagic, compiled.ErrVersion, compiled.ErrChecksum,
		compiled.ErrTruncated, compiled.ErrCorrupt, compiled.ErrTooLarge,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fn, err := compiled.Load(bytes.NewReader(data))
		if err != nil {
			ok := false
			for _, te := range typed {
				if errors.Is(err, te) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("Load: untyped error %v", err)
			}
			return
		}
		// Whatever decoded must be safe to query. Bound the work: a valid
		// header caps nodes, but numVars can still be large, so only probe
		// with cheap assignments.
		if fn.NumVars() > 1<<16 || fn.NumNodes() > 1<<22 {
			return
		}
		a := make([]bool, fn.NumVars())
		batch := [][]bool{a, a}
		for root := 0; root < fn.NumRoots(); root++ {
			v := fn.Eval(root, a)
			if got := fn.EvalBatch(root, batch); got[0] != v || got[1] != v {
				t.Fatalf("EvalBatch disagrees with Eval on root %d", root)
			}
			fn.AnySat(root)
		}
		var buf bytes.Buffer
		if err := fn.Serialize(&buf); err != nil {
			t.Fatalf("re-serialize decoded artifact: %v", err)
		}
		again, err := compiled.Load(&buf)
		if err != nil {
			t.Fatalf("reload re-serialized artifact: %v", err)
		}
		for root := 0; root < fn.NumRoots(); root++ {
			if again.Eval(root, a) != fn.Eval(root, a) {
				t.Fatalf("reload changed root %d", root)
			}
		}
	})
}
