package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Parse reads a circuit in the ISCAS85 .bench format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(f)
//	f = AND(a, b)
//
// Gate definitions may appear in any order; Parse topologically sorts
// them. Supported functions: AND, OR, NAND, NOR, XOR, XNOR, NOT, BUFF
// (also BUF), CONST0, CONST1.
func Parse(name string, r io.Reader) (*Circuit, error) {
	type rawGate struct {
		name   string
		typ    GateType
		fanins []string
		line   int
	}
	var raws []rawGate
	var inputs, outputs []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT(") && !strings.Contains(line, "="):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			inputs = append(inputs, arg)
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT(") && !strings.Contains(line, "="):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("netlist: line %d: unrecognized line %q", lineNo, line)
			}
			gname := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			close_ := strings.LastIndex(rhs, ")")
			if open < 0 || close_ < open {
				return nil, fmt.Errorf("netlist: line %d: malformed gate %q", lineNo, line)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			typ, ok := benchTypes[fn]
			if !ok {
				return nil, fmt.Errorf("netlist: line %d: unknown function %q", lineNo, fn)
			}
			var fanins []string
			inner := strings.TrimSpace(rhs[open+1 : close_])
			if inner != "" {
				for _, f := range strings.Split(inner, ",") {
					fanins = append(fanins, strings.TrimSpace(f))
				}
			}
			raws = append(raws, rawGate{gname, typ, fanins, lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: read: %v", err)
	}

	c := New(name)
	for _, in := range inputs {
		if _, dup := c.byName[in]; dup {
			return nil, fmt.Errorf("netlist: duplicate input %q", in)
		}
		c.AddInput(in)
	}
	byName := make(map[string]*rawGate, len(raws))
	for i := range raws {
		g := &raws[i]
		if _, dup := c.byName[g.name]; dup {
			return nil, fmt.Errorf("netlist: line %d: %q already defined", g.line, g.name)
		}
		if prev, dup := byName[g.name]; dup {
			return nil, fmt.Errorf("netlist: line %d: %q already defined at line %d", g.line, g.name, prev.line)
		}
		byName[g.name] = g
	}

	// Topological emit with cycle detection.
	const (
		unvisited = 0
		visiting  = 1
		doneState = 2
	)
	state := make(map[string]int)
	var emit func(name string) error
	emit = func(gn string) error {
		if _, ok := c.byName[gn]; ok {
			return nil // already emitted (input or earlier gate)
		}
		switch state[gn] {
		case visiting:
			return fmt.Errorf("netlist: combinational cycle through %q", gn)
		case doneState:
			return nil
		}
		g, ok := byName[gn]
		if !ok {
			return fmt.Errorf("netlist: undefined signal %q", gn)
		}
		state[gn] = visiting
		for _, f := range g.fanins {
			if err := emit(f); err != nil {
				return err
			}
		}
		state[gn] = doneState
		if lo, hi := g.typ.arity(); len(g.fanins) < lo || (hi >= 0 && len(g.fanins) > hi) {
			return fmt.Errorf("netlist: line %d: %s gate %q has %d fanins", g.line, g.typ, g.name, len(g.fanins))
		}
		fanins := make([]int, len(g.fanins))
		for i, f := range g.fanins {
			fanins[i] = c.byName[f]
		}
		c.AddGate(g.typ, g.name, fanins...)
		return nil
	}
	// Deterministic order: outputs first (their cones), then leftovers.
	for _, o := range outputs {
		if err := emit(o); err != nil {
			return nil, err
		}
	}
	rest := make([]string, 0, len(byName))
	for gn := range byName {
		rest = append(rest, gn)
	}
	sort.Strings(rest)
	for _, gn := range rest {
		if err := emit(gn); err != nil {
			return nil, err
		}
	}
	for _, o := range outputs {
		idx, ok := c.byName[o]
		if !ok {
			return nil, fmt.Errorf("netlist: output %q undefined", o)
		}
		c.MarkOutput(idx)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

var benchTypes = map[string]GateType{
	"AND": GateAnd, "OR": GateOr, "NAND": GateNand, "NOR": GateNor,
	"XOR": GateXor, "XNOR": GateXnor, "NOT": GateNot, "BUFF": GateBuf,
	"BUF": GateBuf, "CONST0": GateConst0, "CONST1": GateConst1,
}

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	close_ := strings.LastIndex(line, ")")
	if open < 0 || close_ < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close_])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return arg, nil
}

// Write emits the circuit in .bench format. Unnamed gates get synthetic
// names ("g<N>").
func Write(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d inputs, %d outputs, %d gates\n",
		c.Name, len(c.Inputs), len(c.Outputs), len(c.Gates))
	nameOf := make([]string, len(c.Gates))
	for i, g := range c.Gates {
		if g.Name != "" {
			nameOf[i] = g.Name
		} else {
			// Double underscore avoids collisions with user names, which
			// AddGate guarantees are unique among themselves.
			nameOf[i] = fmt.Sprintf("G__%d", i)
		}
	}
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", nameOf[in])
	}
	for _, out := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", nameOf[out])
	}
	for i, g := range c.Gates {
		if g.Type == GateInput {
			continue
		}
		names := make([]string, len(g.Fanin))
		for j, f := range g.Fanin {
			names[j] = nameOf[f]
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", nameOf[i], g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
