// Package netlist provides combinational circuit netlists in the style of
// the ISCAS85 benchmark suite the paper evaluates on: a gate-level
// representation, a simulator (used as the test oracle), a parser/writer
// for the .bench format, generators for the paper's circuits (the
// C6288-style array multiplier behind mult-13/mult-14, and synthetic
// stand-ins for C2670/C3540 — see DESIGN.md §2 for the substitution
// rationale), and a BDD builder that symbolically evaluates a circuit.
package netlist

import (
	"errors"
	"fmt"
)

// GateType enumerates the supported gate functions.
type GateType int

// The gate vocabulary of the ISCAS85 netlists.
const (
	GateInput GateType = iota
	GateAnd
	GateOr
	GateNand
	GateNor
	GateXor
	GateXnor
	GateNot
	GateBuf
	GateConst0
	GateConst1
)

var gateNames = map[GateType]string{
	GateInput: "INPUT", GateAnd: "AND", GateOr: "OR", GateNand: "NAND",
	GateNor: "NOR", GateXor: "XOR", GateXnor: "XNOR", GateNot: "NOT",
	GateBuf: "BUFF", GateConst0: "CONST0", GateConst1: "CONST1",
}

// String returns the .bench mnemonic of the gate type.
func (t GateType) String() string {
	if s, ok := gateNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GATE(%d)", int(t))
}

// arity returns (min, max) fanin counts; max -1 means unbounded.
func (t GateType) arity() (int, int) {
	switch t {
	case GateInput, GateConst0, GateConst1:
		return 0, 0
	case GateNot, GateBuf:
		return 1, 1
	case GateXor, GateXnor:
		return 2, -1
	default:
		return 2, -1
	}
}

// Eval evaluates the gate function on its fanin values.
func (t GateType) Eval(in []bool) bool {
	switch t {
	case GateConst0:
		return false
	case GateConst1:
		return true
	case GateNot:
		return !in[0]
	case GateBuf:
		return in[0]
	case GateAnd, GateNand:
		v := true
		for _, b := range in {
			v = v && b
		}
		if t == GateNand {
			return !v
		}
		return v
	case GateOr, GateNor:
		v := false
		for _, b := range in {
			v = v || b
		}
		if t == GateNor {
			return !v
		}
		return v
	case GateXor, GateXnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		if t == GateXnor {
			return !v
		}
		return v
	}
	panic("netlist: Eval on " + t.String())
}

// Gate is one vertex of the netlist DAG.
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int // indices into Circuit.Gates
}

// Circuit is a combinational netlist. Gates are stored in creation order,
// which the constructors keep topological (fanins precede their gates);
// Parse re-topologizes arbitrary input.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // gate indices of primary inputs, in declaration order
	Outputs []int // gate indices of primary outputs, in declaration order

	byName map[string]int
}

// New creates an empty circuit.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]int)}
}

// NumInputs returns the primary input count.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the primary output count.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// NumGates returns the total gate count (including inputs).
func (c *Circuit) NumGates() int { return len(c.Gates) }

// AddInput declares a primary input and returns its gate index.
func (c *Circuit) AddInput(name string) int {
	idx := c.addGate(Gate{Name: name, Type: GateInput})
	c.Inputs = append(c.Inputs, idx)
	return idx
}

// AddGate appends a gate and returns its index. Fanins must already exist.
func (c *Circuit) AddGate(t GateType, name string, fanin ...int) int {
	lo, hi := t.arity()
	if len(fanin) < lo || (hi >= 0 && len(fanin) > hi) {
		panic(fmt.Sprintf("netlist: %s gate %q with %d fanins", t, name, len(fanin)))
	}
	for _, f := range fanin {
		if f < 0 || f >= len(c.Gates) {
			panic(fmt.Sprintf("netlist: gate %q fanin %d out of range", name, f))
		}
	}
	return c.addGate(Gate{Name: name, Type: t, Fanin: append([]int(nil), fanin...)})
}

func (c *Circuit) addGate(g Gate) int {
	if g.Name != "" {
		if _, dup := c.byName[g.Name]; dup {
			panic(fmt.Sprintf("netlist: duplicate gate name %q", g.Name))
		}
	}
	idx := len(c.Gates)
	c.Gates = append(c.Gates, g)
	if g.Name != "" {
		c.byName[g.Name] = idx
	}
	return idx
}

// MarkOutput declares gate idx a primary output.
func (c *Circuit) MarkOutput(idx int) {
	if idx < 0 || idx >= len(c.Gates) {
		panic("netlist: MarkOutput index out of range")
	}
	c.Outputs = append(c.Outputs, idx)
}

// GateByName returns the index of the named gate.
func (c *Circuit) GateByName(name string) (int, bool) {
	idx, ok := c.byName[name]
	return idx, ok
}

// Validate checks structural well-formedness: in-range topologically
// ordered fanins, correct arities, declared inputs/outputs.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		lo, hi := g.Type.arity()
		if len(g.Fanin) < lo || (hi >= 0 && len(g.Fanin) > hi) {
			return fmt.Errorf("netlist: gate %d (%s %q) has %d fanins", i, g.Type, g.Name, len(g.Fanin))
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(c.Gates) {
				return fmt.Errorf("netlist: gate %d fanin %d out of range", i, f)
			}
			if f >= i {
				return fmt.Errorf("netlist: gate %d not topologically ordered (fanin %d)", i, f)
			}
		}
	}
	for _, in := range c.Inputs {
		if c.Gates[in].Type != GateInput {
			return fmt.Errorf("netlist: declared input %d is a %s", in, c.Gates[in].Type)
		}
	}
	if len(c.Outputs) == 0 {
		return errors.New("netlist: circuit has no outputs")
	}
	for _, out := range c.Outputs {
		if out < 0 || out >= len(c.Gates) {
			return fmt.Errorf("netlist: output %d out of range", out)
		}
	}
	return nil
}

// Eval simulates the circuit on the given input values (in Inputs order)
// and returns the output values (in Outputs order). It is the gate-level
// oracle used to validate generators and the BDD builder.
func (c *Circuit) Eval(inputs []bool) []bool {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("netlist: Eval with %d inputs, circuit has %d", len(inputs), len(c.Inputs)))
	}
	vals := make([]bool, len(c.Gates))
	for i, in := range c.Inputs {
		vals[in] = inputs[i]
	}
	var buf []bool
	for i, g := range c.Gates {
		if g.Type == GateInput {
			continue
		}
		buf = buf[:0]
		for _, f := range g.Fanin {
			buf = append(buf, vals[f])
		}
		vals[i] = g.Type.Eval(buf)
	}
	outs := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		outs[i] = vals[o]
	}
	return outs
}

// FanoutCounts returns, for every gate, the number of gates reading it
// plus one per primary-output declaration. The BDD builder uses this for
// reference-count-driven garbage collection of intermediate results.
func (c *Circuit) FanoutCounts() []int {
	counts := make([]int, len(c.Gates))
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			counts[f]++
		}
	}
	for _, o := range c.Outputs {
		counts[o]++
	}
	return counts
}

// Depth returns the maximum logic depth (inputs have depth 0).
func (c *Circuit) Depth() int {
	depth := make([]int, len(c.Gates))
	maxDepth := 0
	for i, g := range c.Gates {
		for _, f := range g.Fanin {
			if depth[f]+1 > depth[i] {
				depth[i] = depth[f] + 1
			}
		}
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
	}
	return maxDepth
}

// CountByType returns the number of gates of each type.
func (c *Circuit) CountByType() map[GateType]int {
	m := make(map[GateType]int)
	for _, g := range c.Gates {
		m[g.Type]++
	}
	return m
}
