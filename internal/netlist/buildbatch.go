package netlist

import (
	"fmt"

	"bfbdd/internal/core"
	"bfbdd/internal/node"
)

// buildSrc identifies a batched-build operand: a constant, a pinned input
// variable, or a pending unit. Pin-backed sources stay valid across the
// garbage collections that run at batch boundaries.
type buildSrc struct {
	unit int       // ≥ 0: index into the unit graph
	pin  *core.Pin // non-nil: a pinned input variable
	ref  node.Ref  // otherwise: a terminal constant (never relocated)
}

func constSrc(r node.Ref) buildSrc { return buildSrc{unit: -1, ref: r} }
func pinSrc(p *core.Pin) buildSrc  { return buildSrc{unit: -1, pin: p} }

// buildUnit is one binary operation in the decomposed gate graph.
type buildUnit struct {
	op      core.Op
	a, b    buildSrc
	deps    int   // unresolved operand units
	waiters []int // units whose deps include this one
	uses    int   // consumers (operand slots + output declarations)
	pin     *core.Pin
	done    bool
}

// BuildBatched symbolically evaluates the circuit like Build, but instead
// of issuing one Apply at a time it decomposes every gate into binary
// operation units and issues all *ready* units together through
// Kernel.ApplyBatch. This is the paper's operating mode: users queue a
// set of top-level operations, the parallel workers construct them
// cooperatively (each seeding its share, stealing the rest), and the
// garbage-collection condition is checked at batch boundaries (§4.1).
//
// maxBatch bounds the number of operations per batch (0 selects 8× the
// worker count).
func BuildBatched(k *core.Kernel, c *Circuit, inputLevel []int, maxBatch int) (*BuildResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(inputLevel) != len(c.Inputs) {
		return nil, fmt.Errorf("netlist: inputLevel has %d entries, circuit has %d inputs",
			len(inputLevel), len(c.Inputs))
	}
	if k.Levels() < len(c.Inputs) {
		return nil, fmt.Errorf("netlist: kernel has %d levels, circuit needs %d",
			k.Levels(), len(c.Inputs))
	}
	seen := make([]bool, len(inputLevel))
	for _, l := range inputLevel {
		if l < 0 || l >= len(inputLevel) || seen[l] {
			return nil, fmt.Errorf("netlist: inputLevel is not a permutation")
		}
		seen[l] = true
	}
	if maxBatch <= 0 {
		maxBatch = 8 * max(k.Options().Workers, 1)
	}

	// Decompose gates into the unit graph.
	var units []buildUnit
	addUnit := func(op core.Op, a, b buildSrc) buildSrc {
		units = append(units, buildUnit{op: op, a: a, b: b})
		return buildSrc{unit: len(units) - 1}
	}
	gateSrc := make([]buildSrc, len(c.Gates))
	varPins := make([]*core.Pin, 0, len(c.Inputs))
	for pos, in := range c.Inputs {
		p := k.Pin(k.VarRef(inputLevel[pos]))
		varPins = append(varPins, p)
		gateSrc[in] = pinSrc(p)
	}
	for gi, g := range c.Gates {
		switch g.Type {
		case GateInput:
			// handled above
		case GateConst0:
			gateSrc[gi] = constSrc(node.Zero)
		case GateConst1:
			gateSrc[gi] = constSrc(node.One)
		case GateBuf:
			gateSrc[gi] = gateSrc[g.Fanin[0]]
		case GateNot:
			gateSrc[gi] = addUnit(core.OpXnor, gateSrc[g.Fanin[0]], constSrc(node.Zero))
		default:
			op, invert := gateOp(g.Type)
			acc := gateSrc[g.Fanin[0]]
			for _, f := range g.Fanin[1:] {
				acc = addUnit(op, acc, gateSrc[f])
			}
			if invert {
				acc = addUnit(core.OpXnor, acc, constSrc(node.Zero))
			}
			gateSrc[gi] = acc
		}
	}

	// Dependency and consumer accounting (pure functions of the graph).
	for i := range units {
		for _, s := range [2]buildSrc{units[i].a, units[i].b} {
			if s.unit >= 0 {
				units[s.unit].waiters = append(units[s.unit].waiters, i)
				units[s.unit].uses++
				units[i].deps++
			}
		}
	}
	for _, o := range c.Outputs {
		if s := gateSrc[o]; s.unit >= 0 {
			units[s.unit].uses++
		}
	}

	ready := make([]int, 0, len(units))
	for i := range units {
		if units[i].deps == 0 {
			ready = append(ready, i)
		}
	}

	resolve := func(s buildSrc) node.Ref {
		switch {
		case s.unit >= 0:
			return units[s.unit].pin.Ref()
		case s.pin != nil:
			return s.pin.Ref()
		default:
			return s.ref
		}
	}
	releaseUse := func(s buildSrc) {
		if s.unit < 0 {
			return
		}
		u := &units[s.unit]
		u.uses--
		if u.uses == 0 && u.pin != nil {
			k.Unpin(u.pin)
			u.pin = nil
		}
	}

	completed := 0
	ops := make([]core.BinOp, 0, maxBatch)
	for len(ready) > 0 {
		batch := ready
		if len(batch) > maxBatch {
			batch = batch[:maxBatch]
		}
		rest := ready[len(batch):]

		ops = ops[:0]
		for _, id := range batch {
			u := &units[id]
			ops = append(ops, core.BinOp{Op: u.op, F: resolve(u.a), G: resolve(u.b)})
		}
		results := k.ApplyBatch(ops)

		newReady := append([]int(nil), rest...)
		for bi, id := range batch {
			u := &units[id]
			u.pin = k.Pin(results[bi])
			u.done = true
			completed++
			releaseUse(u.a)
			releaseUse(u.b)
			for _, wid := range u.waiters {
				units[wid].deps--
				if units[wid].deps == 0 {
					newReady = append(newReady, wid)
				}
			}
		}
		ready = newReady
	}
	if completed != len(units) {
		return nil, fmt.Errorf("netlist: internal scheduling error: %d of %d units built",
			completed, len(units))
	}

	res := &BuildResult{kernel: k}
	for _, o := range c.Outputs {
		res.Outputs = append(res.Outputs, k.Pin(resolve(gateSrc[o])))
	}
	for _, o := range c.Outputs {
		releaseUse(gateSrc[o])
	}
	for i := range units {
		if units[i].pin != nil {
			k.Unpin(units[i].pin)
			units[i].pin = nil
		}
	}
	for _, p := range varPins {
		k.Unpin(p)
	}
	return res, nil
}
