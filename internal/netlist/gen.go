package netlist

import (
	"fmt"
	"math/rand"
)

// Word is a little-endian vector of gate indices (bit 0 first).
type Word []int

// inputWord declares w named input bits ("<base>0".."<base>{w-1}").
func inputWord(c *Circuit, base string, w int) Word {
	bits := make(Word, w)
	for i := range bits {
		bits[i] = c.AddInput(fmt.Sprintf("%s%d", base, i))
	}
	return bits
}

// constBit returns a constant gate (memoized per circuit would be nicer,
// but constants are rare; a fresh gate keeps the builder simple).
func constBit(c *Circuit, v bool) int {
	t := GateConst0
	if v {
		t = GateConst1
	}
	return c.AddGate(t, "")
}

// halfAdder returns (sum, carry) of two bits.
func halfAdder(c *Circuit, a, b int) (sum, carry int) {
	return c.AddGate(GateXor, "", a, b), c.AddGate(GateAnd, "", a, b)
}

// fullAdder returns (sum, carry) of three bits.
func fullAdder(c *Circuit, a, b, cin int) (sum, carry int) {
	axb := c.AddGate(GateXor, "", a, b)
	sum = c.AddGate(GateXor, "", axb, cin)
	t1 := c.AddGate(GateAnd, "", a, b)
	t2 := c.AddGate(GateAnd, "", axb, cin)
	carry = c.AddGate(GateOr, "", t1, t2)
	return sum, carry
}

// rippleAdd builds a ripple-carry adder over equal-width words, returning
// the sum word and the carry out.
func rippleAdd(c *Circuit, a, b Word, cin int) (Word, int) {
	if len(a) != len(b) {
		panic("netlist: rippleAdd width mismatch")
	}
	sum := make(Word, len(a))
	carry := cin
	for i := range a {
		if carry < 0 {
			sum[i], carry = halfAdder(c, a[i], b[i])
		} else {
			sum[i], carry = fullAdder(c, a[i], b[i], carry)
		}
	}
	return sum, carry
}

// RippleAdder generates a w-bit ripple-carry adder circuit with inputs
// a0..a{w-1}, b0..b{w-1}, cin and outputs s0..s{w-1}, cout.
func RippleAdder(w int) *Circuit {
	c := New(fmt.Sprintf("radd-%d", w))
	a := inputWord(c, "a", w)
	b := inputWord(c, "b", w)
	cin := c.AddInput("cin")
	sum, cout := rippleAdd(c, a, b, cin)
	for _, s := range sum {
		c.MarkOutput(s)
	}
	c.MarkOutput(cout)
	return c
}

// CarryLookaheadAdder generates a w-bit adder with 4-bit lookahead groups:
// a structurally different adder computing the same function as
// RippleAdder, used by the equivalence-checking example.
func CarryLookaheadAdder(w int) *Circuit {
	c := New(fmt.Sprintf("cla-%d", w))
	a := inputWord(c, "a", w)
	b := inputWord(c, "b", w)
	cin := c.AddInput("cin")

	p := make([]int, w) // propagate
	g := make([]int, w) // generate
	for i := 0; i < w; i++ {
		p[i] = c.AddGate(GateXor, "", a[i], b[i])
		g[i] = c.AddGate(GateAnd, "", a[i], b[i])
	}
	carry := make([]int, w+1)
	carry[0] = cin
	for base := 0; base < w; base += 4 {
		end := min(base+4, w)
		for i := base; i < end; i++ {
			// c[i+1] = g[i] + p[i]·g[i-1] + ... + p[i]···p[base]·c[base]
			terms := []int{g[i]}
			for j := i - 1; j >= base; j-- {
				t := g[j]
				for m := j + 1; m <= i; m++ {
					t = c.AddGate(GateAnd, "", t, p[m])
				}
				terms = append(terms, t)
			}
			t := carry[base]
			for m := base; m <= i; m++ {
				t = c.AddGate(GateAnd, "", t, p[m])
			}
			terms = append(terms, t)
			acc := terms[0]
			for _, term := range terms[1:] {
				acc = c.AddGate(GateOr, "", acc, term)
			}
			carry[i+1] = acc
		}
	}
	for i := 0; i < w; i++ {
		c.MarkOutput(c.AddGate(GateXor, "", p[i], carry[i]))
	}
	c.MarkOutput(carry[w])
	return c
}

// Multiplier generates an n×n array multiplier in the structure of the
// ISCAS85 C6288 circuit: an n×n matrix of partial-product AND gates
// summed by an array of half/full adders. The paper built its mult-13 and
// mult-14 workloads by regenerating exactly this structure at 13 and 14
// bits; Multiplier(16) corresponds to C6288 itself.
func Multiplier(n int) *Circuit {
	c := New(fmt.Sprintf("mult-%d", n))
	a := inputWord(c, "a", n)
	b := inputWord(c, "b", n)

	// Partial products pp[i][j] = a[j] AND b[i], weight i+j.
	pp := make([][]int, n)
	for i := range pp {
		pp[i] = make([]int, n)
		for j := range pp[i] {
			pp[i][j] = c.AddGate(GateAnd, "", a[j], b[i])
		}
	}

	// Accumulate row by row: acc holds the running sum bits, one column
	// per output weight, rippling each row's carries like the C6288
	// adder array.
	acc := make(Word, 2*n)
	zero := constBit(c, false)
	for w := range acc {
		acc[w] = zero
	}
	for j := 0; j < n; j++ {
		acc[j] = pp[0][j]
	}
	for i := 1; i < n; i++ {
		carry := -1
		for j := 0; j < n; j++ {
			w := i + j
			if carry < 0 {
				acc[w], carry = halfAdder(c, acc[w], pp[i][j])
			} else {
				acc[w], carry = fullAdder(c, acc[w], pp[i][j], carry)
			}
		}
		// Propagate the final carry into the higher columns.
		for w := i + n; w < 2*n && carry >= 0; w++ {
			acc[w], carry = halfAdder(c, acc[w], carry)
		}
	}
	for _, bit := range acc {
		c.MarkOutput(bit)
	}
	return c
}

// Comparator generates a w-bit magnitude comparator with outputs
// lt (a < b), eq (a == b), gt (a > b).
func Comparator(w int) *Circuit {
	c := New(fmt.Sprintf("cmp-%d", w))
	a := inputWord(c, "a", w)
	b := inputWord(c, "b", w)
	lt, eq := comparatorInto(c, a, b)
	gt := c.AddGate(GateNor, "", lt, eq)
	c.MarkOutput(lt)
	c.MarkOutput(eq)
	c.MarkOutput(gt)
	return c
}

// comparatorInto builds lt/eq networks over existing words.
func comparatorInto(c *Circuit, a, b Word) (lt, eq int) {
	// From the most significant bit down: lt = Σ (eq_above · ¬a_i · b_i).
	w := len(a)
	eq = constBit(c, true)
	lt = constBit(c, false)
	for i := w - 1; i >= 0; i-- {
		na := c.AddGate(GateNot, "", a[i])
		bitLt := c.AddGate(GateAnd, "", na, b[i])
		term := c.AddGate(GateAnd, "", eq, bitLt)
		lt = c.AddGate(GateOr, "", lt, term)
		bitEq := c.AddGate(GateXnor, "", a[i], b[i])
		eq = c.AddGate(GateAnd, "", eq, bitEq)
	}
	return lt, eq
}

// PriorityEncoder generates a w-input priority encoder: outputs the index
// of the highest-numbered asserted input (ceil(log2 w) bits) plus a
// "valid" flag.
func PriorityEncoder(w int) *Circuit {
	c := New(fmt.Sprintf("prio-%d", w))
	in := inputWord(c, "r", w)
	enc, valid := priorityEncoderInto(c, in)
	for _, bit := range enc {
		c.MarkOutput(bit)
	}
	c.MarkOutput(valid)
	return c
}

func priorityEncoderInto(c *Circuit, in Word) (Word, int) {
	w := len(in)
	bits := 0
	for 1<<bits < w {
		bits++
	}
	// highest[i] = in[i] AND NOT(any higher input).
	anyAbove := constBit(c, false)
	highest := make([]int, w)
	for i := w - 1; i >= 0; i-- {
		notAbove := c.AddGate(GateNot, "", anyAbove)
		highest[i] = c.AddGate(GateAnd, "", in[i], notAbove)
		anyAbove = c.AddGate(GateOr, "", anyAbove, in[i])
	}
	enc := make(Word, bits)
	for bpos := 0; bpos < bits; bpos++ {
		acc := constBit(c, false)
		for i := 0; i < w; i++ {
			if i>>bpos&1 == 1 {
				acc = c.AddGate(GateOr, "", acc, highest[i])
			}
		}
		enc[bpos] = acc
	}
	return enc, anyAbove
}

// mux2 returns sel ? a1 : a0.
func mux2(c *Circuit, sel, a0, a1 int) int {
	ns := c.AddGate(GateNot, "", sel)
	t0 := c.AddGate(GateAnd, "", ns, a0)
	t1 := c.AddGate(GateAnd, "", sel, a1)
	return c.AddGate(GateOr, "", t0, t1)
}

// muxWord selects between equal-width words.
func muxWord(c *Circuit, sel int, a0, a1 Word) Word {
	out := make(Word, len(a0))
	for i := range out {
		out[i] = mux2(c, sel, a0[i], a1[i])
	}
	return out
}

// aluInto builds a w-bit ALU over existing operand words with a 3-bit
// opcode: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 nor, 6 shift-left-1,
// 7 pass-a. Returns the result word, carry-out, and zero flag.
func aluInto(c *Circuit, a, b Word, op [3]int, cin int) (Word, int, int) {
	w := len(a)
	// Arithmetic unit: a + (b XOR sub) + (cin OR sub) — sub = op==1.
	nop2 := c.AddGate(GateNot, "", op[2])
	nop1 := c.AddGate(GateNot, "", op[1])
	sub := c.AddGate(GateAnd, "", c.AddGate(GateAnd, "", nop2, nop1), op[0])
	bx := make(Word, w)
	for i := range bx {
		bx[i] = c.AddGate(GateXor, "", b[i], sub)
	}
	carryIn := c.AddGate(GateOr, "", cin, sub)
	sum, cout := rippleAdd(c, a, bx, carryIn)

	andW := make(Word, w)
	orW := make(Word, w)
	xorW := make(Word, w)
	norW := make(Word, w)
	shlW := make(Word, w)
	for i := 0; i < w; i++ {
		andW[i] = c.AddGate(GateAnd, "", a[i], b[i])
		orW[i] = c.AddGate(GateOr, "", a[i], b[i])
		xorW[i] = c.AddGate(GateXor, "", a[i], b[i])
		norW[i] = c.AddGate(GateNor, "", a[i], b[i])
		if i == 0 {
			shlW[i] = constBit(c, false)
		} else {
			shlW[i] = c.AddGate(GateBuf, "", a[i-1])
		}
	}

	// 8-way mux tree on the opcode.
	m01 := muxWord(c, op[0], sum, sum) // op 0/1 both arithmetic
	m23 := muxWord(c, op[0], andW, orW)
	m45 := muxWord(c, op[0], xorW, norW)
	m67 := muxWord(c, op[0], shlW, a)
	lo := muxWord(c, op[1], m01, m23)
	hi := muxWord(c, op[1], m45, m67)
	res := muxWord(c, op[2], lo, hi)

	zero := res[0]
	for i := 1; i < w; i++ {
		zero = c.AddGate(GateOr, "", zero, res[i])
	}
	zero = c.AddGate(GateNot, "", zero)
	return res, cout, zero
}

// ALU generates a standalone w-bit ALU circuit.
func ALU(w int) *Circuit {
	c := New(fmt.Sprintf("alu-%d", w))
	a := inputWord(c, "a", w)
	b := inputWord(c, "b", w)
	var op [3]int
	for i := range op {
		op[i] = c.AddInput(fmt.Sprintf("op%d", i))
	}
	cin := c.AddInput("cin")
	res, cout, zero := aluInto(c, a, b, op, cin)
	for _, bit := range res {
		c.MarkOutput(bit)
	}
	c.MarkOutput(cout)
	c.MarkOutput(zero)
	return c
}

// multiplierInto builds an array multiplier over existing operand words,
// returning the full product word (len(a)+len(b) bits).
func multiplierInto(c *Circuit, a, b Word) Word {
	n, m := len(a), len(b)
	acc := make(Word, n+m)
	zero := constBit(c, false)
	for w := range acc {
		acc[w] = zero
	}
	for j := 0; j < n; j++ {
		acc[j] = c.AddGate(GateAnd, "", a[j], b[0])
	}
	for i := 1; i < m; i++ {
		carry := -1
		for j := 0; j < n; j++ {
			pp := c.AddGate(GateAnd, "", a[j], b[i])
			w := i + j
			if carry < 0 {
				acc[w], carry = halfAdder(c, acc[w], pp)
			} else {
				acc[w], carry = fullAdder(c, acc[w], pp, carry)
			}
		}
		for w := i + n; w < len(acc) && carry >= 0; w++ {
			acc[w], carry = halfAdder(c, acc[w], carry)
		}
	}
	return acc
}

// C3540Like generates a synthetic stand-in for ISCAS85 C3540 (an 8-bit
// ALU with binary/BCD arithmetic and control decoding): an 8-bit ALU, a
// BCD-correction stage (add-6 when a nibble exceeds 9), flag logic, and a
// multiply unit whose middle product bits are mixed into the data outputs
// — the block that gives the circuit the "large, irregular BDD" character
// of the real C3540. See DESIGN.md §2 for the substitution rationale.
func C3540Like() *Circuit { return c3540LikeScaled(10) }

// C3540LikeScaled exposes the stand-in with a configurable multiply-unit
// width, letting the benchmark harness trade run time for fidelity.
func C3540LikeScaled(mulBits int) *Circuit { return c3540LikeScaled(mulBits) }

func c3540LikeScaled(mulBits int) *Circuit {
	const w = 8
	c := New("c3540-like")
	a := inputWord(c, "a", w)
	b := inputWord(c, "b", w)
	var op [3]int
	for i := range op {
		op[i] = c.AddInput(fmt.Sprintf("op%d", i))
	}
	cin := c.AddInput("cin")
	bcdMode := c.AddInput("bcd")
	m1 := inputWord(c, "m", mulBits)
	m2 := inputWord(c, "n", mulBits)

	res, cout, zero := aluInto(c, a, b, op, cin)

	// BCD correction: for each nibble whose pre-correction value exceeds
	// 9, add 6; the correction word is added full-width so nibble carries
	// propagate (5+7 = 0x0C corrects to 0x12).
	zeroBit := constBit(c, false)
	corrWord := make(Word, w)
	for i := range corrWord {
		corrWord[i] = zeroBit
	}
	for nib := 0; nib < w; nib += 4 {
		n := res[nib : nib+4]
		// >9 ⇔ bit3 & (bit2 | bit1)
		gt9 := c.AddGate(GateAnd, "", n[3], c.AddGate(GateOr, "", n[2], n[1]))
		doCorr := c.AddGate(GateAnd, "", gt9, bcdMode)
		corrWord[nib+1] = doCorr
		corrWord[nib+2] = doCorr
	}
	corrected, _ := rippleAdd(c, res, corrWord, -1) // -1: no carry in

	// Multiply unit: the middle product bits (the BDD-hard ones) are
	// XOR-mixed into the data outputs. With m = n = 0 the product is 0
	// and the data outputs reduce to the plain BCD-corrected ALU.
	prod := multiplierInto(c, m1, m2)
	mid := mulBits - 2 // start of the hard middle bits
	mixed := make(Word, w)
	for i := 0; i < w; i++ {
		mixed[i] = c.AddGate(GateXor, "", corrected[i], prod[(mid+i)%len(prod)])
	}

	parity := mixed[0]
	for i := 1; i < w; i++ {
		parity = c.AddGate(GateXor, "", parity, mixed[i])
	}

	for _, bit := range mixed {
		c.MarkOutput(bit)
	}
	c.MarkOutput(cout)
	c.MarkOutput(zero)
	c.MarkOutput(parity)
	return c
}

// C2670Like generates a synthetic stand-in for ISCAS85 C2670 (a 12-bit
// ALU and controller): a 12-bit ALU, a 12-bit comparator, a 12-way
// priority encoder with an interrupt-style control block merged through
// output muxes, and a multiply unit whose middle product bits are mixed
// into the muxed outputs to reproduce the real circuit's large irregular
// BDDs. See DESIGN.md §2 for the substitution rationale.
func C2670Like() *Circuit { return c2670LikeScaled(10) }

// C2670LikeScaled exposes the stand-in with a configurable multiply-unit
// width, letting the benchmark harness trade run time for fidelity.
func C2670LikeScaled(mulBits int) *Circuit { return c2670LikeScaled(mulBits) }

func c2670LikeScaled(mulBits int) *Circuit {
	const w = 12
	c := New("c2670-like")
	a := inputWord(c, "a", w)
	b := inputWord(c, "b", w)
	var op [3]int
	for i := range op {
		op[i] = c.AddInput(fmt.Sprintf("op%d", i))
	}
	cin := c.AddInput("cin")
	irq := inputWord(c, "irq", w)
	mask := inputWord(c, "mask", w)
	sel := c.AddInput("sel")
	m1 := inputWord(c, "m", mulBits)
	m2 := inputWord(c, "n", mulBits)

	res, cout, zero := aluInto(c, a, b, op, cin)
	lt, eq := comparatorInto(c, a, b)

	masked := make(Word, w)
	for i := 0; i < w; i++ {
		masked[i] = c.AddGate(GateAnd, "", irq[i], mask[i])
	}
	enc, valid := priorityEncoderInto(c, masked)

	// Output stage: mux the ALU result against the zero-extended encoder
	// output under sel.
	encExt := make(Word, w)
	for i := range encExt {
		if i < len(enc) {
			encExt[i] = enc[i]
		} else {
			encExt[i] = constBit(c, false)
		}
	}
	out := muxWord(c, sel, res, encExt)

	// Multiply unit: mix middle product bits into the outputs (a no-op
	// when m = n = 0), plus a product-vs-operand comparator flag. The
	// comparison is against the independent b word: comparing against the
	// ALU-mixed outputs would square the BDD sizes and dwarf the real
	// circuit's difficulty.
	prod := multiplierInto(c, m1, m2)
	mid := mulBits - 2
	for i := range out {
		out[i] = c.AddGate(GateXor, "", out[i], prod[(mid+i)%len(prod)])
	}
	// Zero-extend the product to the comparator width for small
	// multiply-unit scales.
	cmpWord := make(Word, w)
	for i := range cmpWord {
		if i < len(prod) {
			cmpWord[i] = prod[i]
		} else {
			cmpWord[i] = constBit(c, false)
		}
	}
	pLT, _ := comparatorInto(c, cmpWord, b)

	for _, bit := range out {
		c.MarkOutput(bit)
	}
	c.MarkOutput(cout)
	c.MarkOutput(zero)
	c.MarkOutput(lt)
	c.MarkOutput(eq)
	c.MarkOutput(valid)
	c.MarkOutput(pLT)
	return c
}

// Parity generates an n-input XOR tree.
func Parity(n int) *Circuit {
	c := New(fmt.Sprintf("parity-%d", n))
	in := inputWord(c, "x", n)
	acc := in[0]
	for i := 1; i < n; i++ {
		acc = c.AddGate(GateXor, "", acc, in[i])
	}
	c.MarkOutput(acc)
	return c
}

// Random generates a pseudo-random combinational circuit with the given
// input and gate counts, for fuzzing the builders. The same seed always
// yields the same circuit.
func Random(inputs, gates int, seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := New(fmt.Sprintf("rand-%d-%d-%d", inputs, gates, seed))
	inputWord(c, "x", inputs)
	types := []GateType{GateAnd, GateOr, GateNand, GateNor, GateXor, GateXnor, GateNot}
	for i := 0; i < gates; i++ {
		t := types[rng.Intn(len(types))]
		n := len(c.Gates)
		if t == GateNot {
			c.AddGate(t, "", rng.Intn(n))
		} else {
			c.AddGate(t, "", rng.Intn(n), rng.Intn(n))
		}
	}
	// The last few gates become outputs.
	outs := min(8, gates)
	for i := len(c.Gates) - outs; i < len(c.Gates); i++ {
		c.MarkOutput(i)
	}
	return c
}
