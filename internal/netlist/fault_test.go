package netlist

import (
	"testing"

	"bfbdd/internal/core"
)

func TestCloneIndependence(t *testing.T) {
	c := Multiplier(4)
	cp := c.Clone()
	cp.Gates[20].Type = GateConst0
	if c.Gates[20].Type == GateConst0 {
		t.Fatal("Clone shares gate storage")
	}
	if cp.NumInputs() != c.NumInputs() || cp.NumOutputs() != c.NumOutputs() {
		t.Fatal("Clone dropped IO")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectFaultModels(t *testing.T) {
	c := RippleAdder(6)
	for _, kind := range []FaultKind{FaultWrongGate, FaultStuckAt0, FaultStuckAt1, FaultSwappedFanin} {
		bad, fault, err := InjectFault(c, kind, 11)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := bad.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if fault.Kind != kind {
			t.Fatalf("fault kind mismatch")
		}
		// The original must be untouched.
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		switch kind {
		case FaultStuckAt0:
			if bad.Gates[fault.Gate].Type != GateConst0 {
				t.Fatalf("stuck-at-0 gate is %v", bad.Gates[fault.Gate].Type)
			}
		case FaultStuckAt1:
			if bad.Gates[fault.Gate].Type != GateConst1 {
				t.Fatalf("stuck-at-1 gate is %v", bad.Gates[fault.Gate].Type)
			}
		case FaultWrongGate:
			if bad.Gates[fault.Gate].Type == fault.Prev {
				t.Fatal("wrong-gate fault changed nothing")
			}
		}
	}
}

func TestInjectFaultDeterministic(t *testing.T) {
	c := Multiplier(4)
	b1, f1, err := InjectFault(c, FaultWrongGate, 7)
	if err != nil {
		t.Fatal(err)
	}
	b2, f2, err := InjectFault(c, FaultWrongGate, 7)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatalf("same seed, different faults: %+v vs %+v", f1, f2)
	}
	if b1.Gates[f1.Gate].Type != b2.Gates[f2.Gate].Type {
		t.Fatal("same seed, different mutations")
	}
}

func TestFaultDetectionViaEquivalence(t *testing.T) {
	// Most stuck-at faults in an adder are observable: the BDDs of the
	// faulty circuit must differ from the specification's and yield a
	// counterexample — the paper's §1 scenario, via the library API.
	spec := RippleAdder(5)
	k := core.NewKernel(core.Options{Levels: spec.NumInputs(), Engine: core.EnginePBF})
	lv := identityOrder(spec.NumInputs())
	specRes, err := Build(k, spec, lv)
	if err != nil {
		t.Fatal(err)
	}
	defer specRes.Release()

	detected := 0
	const trials = 8
	for seed := int64(0); seed < trials; seed++ {
		bad, _, err := InjectFault(spec, FaultStuckAt0, seed)
		if err != nil {
			t.Fatal(err)
		}
		badRes, err := Build(k, bad, lv)
		if err != nil {
			t.Fatal(err)
		}
		for i := range specRes.Refs() {
			g, b := specRes.Refs()[i], badRes.Refs()[i]
			if g == b {
				continue
			}
			miter := k.Apply(core.OpXor, g, b)
			cex, ok := k.AnySat(miter)
			if !ok {
				t.Fatal("outputs differ but miter unsatisfiable")
			}
			assign := make([]bool, k.Levels())
			for lvl, v := range cex {
				assign[lvl] = v == 1
			}
			if k.Eval(g, assign) == k.Eval(b, assign) {
				t.Fatal("counterexample does not distinguish")
			}
			detected++
			break
		}
		badRes.Release()
	}
	if detected == 0 {
		t.Fatal("no stuck-at fault was observable across all trials (suspicious)")
	}
}
