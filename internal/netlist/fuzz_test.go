package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseBench feeds arbitrary bytes to the .bench parser. Hostile
// input must produce an error, never a panic; accepted input must
// validate and survive a Write → re-Parse round trip.
func FuzzParseBench(f *testing.F) {
	f.Add([]byte("INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(a, b)\n"))
	f.Add([]byte("# comment only\n"))
	f.Add([]byte("INPUT(a)\nOUTPUT(f)\nf = NOT(a)\ng = BUFF(f)\n"))
	f.Add([]byte("f = AND(f, f)\n"))            // self-cycle
	f.Add([]byte("OUTPUT(f)\nf = XOR(a, b)\n")) // undefined fanins
	f.Add([]byte("f = CONST1()\nOUTPUT(f)\n"))
	f.Add([]byte("INPUT(a)\nf = AND(a\n")) // unbalanced paren
	f.Add([]byte(strings.Repeat("INPUT(x)\n", 50)))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse("fuzz", bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Parse accepted a circuit Validate rejects: %v\ninput: %q", verr, data)
		}
		var out bytes.Buffer
		if werr := Write(&out, c); werr != nil {
			t.Fatalf("Write failed on a parsed circuit: %v\ninput: %q", werr, data)
		}
		c2, rerr := Parse("fuzz-reparse", &out)
		if rerr != nil {
			t.Fatalf("re-Parse of Write output failed: %v\nemitted: %q", rerr, out.Bytes())
		}
		if len(c2.Gates) != len(c.Gates) || len(c2.Inputs) != len(c.Inputs) ||
			len(c2.Outputs) != len(c.Outputs) {
			t.Fatalf("round trip changed shape: %d/%d/%d gates/inputs/outputs, was %d/%d/%d",
				len(c2.Gates), len(c2.Inputs), len(c2.Outputs),
				len(c.Gates), len(c.Inputs), len(c.Outputs))
		}
	})
}
