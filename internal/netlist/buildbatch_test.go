package netlist

import (
	"testing"

	"bfbdd/internal/core"
)

// checkBatchedAgainstBuild verifies that batched and sequential builds
// produce identical canonical refs within one kernel.
func checkBatchedAgainstBuild(t *testing.T, k *core.Kernel, c *Circuit, batch int) {
	t.Helper()
	lv := identityOrder(c.NumInputs())
	r1, err := Build(k, c, lv)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := BuildBatched(k, c, lv, batch)
	if err != nil {
		t.Fatal(err)
	}
	refs1, refs2 := r1.Refs(), r2.Refs()
	for i := range refs1 {
		if refs1[i] != refs2[i] {
			t.Fatalf("output %d: batched %v != sequential %v", i, refs2[i], refs1[i])
		}
	}
	r1.Release()
	r2.Release()
}

func TestBuildBatchedMatchesBuild(t *testing.T) {
	circuits := []*Circuit{
		Multiplier(5),
		RippleAdder(6),
		Comparator(4),
		Parity(9),
		Random(8, 80, 3),
	}
	for _, c := range circuits {
		for name, k := range buildKernels(c.NumInputs()) {
			t.Run(c.Name+"/"+name, func(t *testing.T) {
				checkBatchedAgainstBuild(t, k, c, 0)
			})
		}
	}
}

func TestBuildBatchedSmallBatches(t *testing.T) {
	// Batch size 1 degenerates to sequential issue; 3 exercises partial
	// ready sets.
	c := Multiplier(4)
	for _, batch := range []int{1, 3, 1000} {
		k := core.NewKernel(core.Options{
			Levels: c.NumInputs(), Engine: core.EnginePar, Workers: 2,
			EvalThreshold: 64, GroupSize: 8, Stealing: true,
		})
		checkBatchedAgainstBuild(t, k, c, batch)
	}
}

func TestBuildBatchedSemantics(t *testing.T) {
	c := C3540LikeScaled(5)
	k := core.NewKernel(core.Options{
		Levels: c.NumInputs(), Engine: core.EnginePar, Workers: 4,
		EvalThreshold: 128, GroupSize: 16, Stealing: true,
	})
	lv := identityOrder(c.NumInputs())
	res, err := BuildBatched(k, c, lv, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	// Verify against gate-level simulation on random vectors.
	assign := make([]bool, k.Levels())
	in := make([]bool, c.NumInputs())
	for trial := 0; trial < 128; trial++ {
		for i := range in {
			in[i] = (trial*31+i*7)%3 == 0
		}
		copy(assign, in)
		want := c.Eval(in)
		for o, r := range res.Refs() {
			if got := k.Eval(r, assign); got != want[o] {
				t.Fatalf("trial %d output %d: BDD=%v sim=%v", trial, o, got, want[o])
			}
		}
	}
}

func TestBuildBatchedWithGC(t *testing.T) {
	c := Multiplier(5)
	k := core.NewKernel(core.Options{
		Levels: c.NumInputs(), Engine: core.EnginePar, Workers: 3,
		EvalThreshold: 64, GroupSize: 8, Stealing: true,
		GCMinNodes: 64, GCGrowth: 1.15,
	})
	lv := identityOrder(c.NumInputs())
	res, err := BuildBatched(k, c, lv, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	if k.Memory().GCCount == 0 {
		t.Fatal("expected batch-boundary collections")
	}
	// Compare against a fresh sequential build.
	k2 := core.NewKernel(core.Options{Levels: c.NumInputs(), Engine: core.EngineDF})
	res2, err := Build(k2, c, lv)
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Release()
	for i := range res.Refs() {
		if k.Size(res.Refs()[i]) != k2.Size(res2.Refs()[i]) {
			t.Fatalf("output %d: size diverged after GC-heavy batched build", i)
		}
	}
}

func TestBuildBatchedPinHygiene(t *testing.T) {
	c := Multiplier(4)
	k := core.NewKernel(core.Options{
		Levels: c.NumInputs(), Engine: core.EnginePar, Workers: 2, Stealing: true,
	})
	res, err := BuildBatched(k, c, identityOrder(c.NumInputs()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.NumPins() != c.NumOutputs() {
		t.Fatalf("pins after batched build = %d want %d", k.NumPins(), c.NumOutputs())
	}
	res.Release()
	if k.NumPins() != 0 {
		t.Fatalf("pins after release = %d", k.NumPins())
	}
	k.GC()
	if k.NumNodes() != 0 {
		t.Fatalf("nodes after release+GC = %d", k.NumNodes())
	}
}

func TestBuildBatchedBuffersAndConstants(t *testing.T) {
	c := New("bufconst")
	a := c.AddInput("a")
	one := c.AddGate(GateConst1, "one")
	buf := c.AddGate(GateBuf, "buf", a)
	buf2 := c.AddGate(GateBuf, "buf2", buf)
	g := c.AddGate(GateAnd, "g", buf2, one)
	c.MarkOutput(g)
	c.MarkOutput(buf) // output aliasing an input through a buffer
	k := core.NewKernel(core.Options{Levels: 1, Engine: core.EnginePar, Workers: 2})
	res, err := BuildBatched(k, c, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	refs := res.Refs()
	if refs[0] != refs[1] {
		t.Fatalf("a AND 1 (%v) should equal buffered a (%v)", refs[0], refs[1])
	}
}
