package netlist

import (
	"fmt"

	"bfbdd/internal/core"
	"bfbdd/internal/node"
)

// BuildResult holds the symbolic evaluation of a circuit: one pinned BDD
// per primary output, in Outputs order. Callers must Release the result
// (or keep it) to control the pins' lifetime.
type BuildResult struct {
	kernel  *core.Kernel
	Outputs []*core.Pin
}

// Refs returns the current output refs (valid until the next operation
// that may garbage collect).
func (r *BuildResult) Refs() []node.Ref {
	refs := make([]node.Ref, len(r.Outputs))
	for i, p := range r.Outputs {
		refs[i] = p.Ref()
	}
	return refs
}

// Release unpins all outputs.
func (r *BuildResult) Release() {
	for _, p := range r.Outputs {
		r.kernel.Unpin(p)
	}
	r.Outputs = nil
}

// Build symbolically evaluates the circuit, producing a BDD for every
// primary output. inputLevel maps each primary input (by position in
// c.Inputs) to its BDD variable level, typically computed by
// internal/order; it must be a permutation of [0, NumInputs).
//
// Intermediate gate results are pinned only while gates still reference
// them, so the kernel's automatic garbage collection can reclaim dead
// subgraphs mid-build — the workload pattern of the paper's experiments,
// where BDD construction for the ISCAS85 circuits proceeds gate by gate.
func Build(k *core.Kernel, c *Circuit, inputLevel []int) (*BuildResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(inputLevel) != len(c.Inputs) {
		return nil, fmt.Errorf("netlist: inputLevel has %d entries, circuit has %d inputs",
			len(inputLevel), len(c.Inputs))
	}
	if k.Levels() < len(c.Inputs) {
		return nil, fmt.Errorf("netlist: kernel has %d levels, circuit needs %d",
			k.Levels(), len(c.Inputs))
	}
	seen := make([]bool, len(inputLevel))
	for _, l := range inputLevel {
		if l < 0 || l >= len(inputLevel) || seen[l] {
			return nil, fmt.Errorf("netlist: inputLevel is not a permutation")
		}
		seen[l] = true
	}

	fanout := c.FanoutCounts()
	pins := make([]*core.Pin, len(c.Gates))
	release := func(gi int) {
		fanout[gi]--
		if fanout[gi] == 0 && pins[gi] != nil {
			k.Unpin(pins[gi])
			pins[gi] = nil
		}
	}

	for pos, in := range c.Inputs {
		pins[in] = k.Pin(k.VarRef(inputLevel[pos]))
	}

	for gi, g := range c.Gates {
		if g.Type == GateInput {
			continue
		}
		var r node.Ref
		switch g.Type {
		case GateConst0:
			r = node.Zero
		case GateConst1:
			r = node.One
		case GateBuf:
			r = pins[g.Fanin[0]].Ref()
		case GateNot:
			r = k.Not(pins[g.Fanin[0]].Ref())
		default:
			op, invert := gateOp(g.Type)
			r = pins[g.Fanin[0]].Ref()
			for _, f := range g.Fanin[1:] {
				r = k.Apply(op, r, pins[f].Ref())
			}
			if invert {
				// n-ary NAND/NOR/XNOR are the complement of the n-ary
				// AND/OR/XOR fold (inverting pairwise would be wrong).
				r = k.Not(r)
			}
		}
		pins[gi] = k.Pin(r)
		for _, f := range g.Fanin {
			release(f)
		}
	}

	res := &BuildResult{kernel: k}
	for _, o := range c.Outputs {
		// Re-pin per output declaration (an output may also feed gates
		// or be listed twice), then drop the build-time pin.
		res.Outputs = append(res.Outputs, k.Pin(pins[o].Ref()))
	}
	for _, o := range c.Outputs {
		release(o)
	}
	for gi := range pins {
		if pins[gi] != nil && fanout[gi] == 0 {
			k.Unpin(pins[gi])
			pins[gi] = nil
		}
	}
	return res, nil
}

// gateOp maps an n-ary gate type to its fold operation plus a final
// inversion flag.
func gateOp(t GateType) (core.Op, bool) {
	switch t {
	case GateAnd:
		return core.OpAnd, false
	case GateOr:
		return core.OpOr, false
	case GateNand:
		return core.OpAnd, true
	case GateNor:
		return core.OpOr, true
	case GateXor:
		return core.OpXor, false
	case GateXnor:
		return core.OpXor, true
	}
	panic("netlist: gateOp on " + t.String())
}
