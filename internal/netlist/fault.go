package netlist

import (
	"fmt"
	"math/rand"
)

// FaultKind selects a fault model for InjectFault.
type FaultKind int

// The supported fault models, in the spirit of the paper's motivation
// (§1): an incorrect implementation whose BDD differs from the
// specification's, detectable by equivalence checking with a
// counterexample extracted from the XOR of the two diagrams.
const (
	// FaultWrongGate replaces a gate's function with a different one of
	// the same arity (e.g. AND→OR).
	FaultWrongGate FaultKind = iota
	// FaultStuckAt0 replaces a gate with the constant 0.
	FaultStuckAt0
	// FaultStuckAt1 replaces a gate with the constant 1.
	FaultStuckAt1
	// FaultSwappedFanin swaps the first two fanins of a gate (visible for
	// non-commutative structures through reconvergence).
	FaultSwappedFanin
)

// String returns the fault model name.
func (k FaultKind) String() string {
	switch k {
	case FaultWrongGate:
		return "wrong-gate"
	case FaultStuckAt0:
		return "stuck-at-0"
	case FaultStuckAt1:
		return "stuck-at-1"
	case FaultSwappedFanin:
		return "swapped-fanin"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault describes one injected fault.
type Fault struct {
	Kind FaultKind
	Gate int // index of the mutated gate
	Prev GateType
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	cp := New(c.Name)
	for _, g := range c.Gates {
		cp.addGate(Gate{Name: g.Name, Type: g.Type, Fanin: append([]int(nil), g.Fanin...)})
	}
	cp.Inputs = append([]int(nil), c.Inputs...)
	cp.Outputs = append([]int(nil), c.Outputs...)
	return cp
}

// InjectFault returns a copy of the circuit with one pseudo-random fault
// of the given kind (deterministic per seed), plus a description of what
// was mutated. It never mutates primary inputs. The fault is structural;
// whether it is observable at the outputs depends on the circuit (test
// with BDD equivalence checking).
func InjectFault(c *Circuit, kind FaultKind, seed int64) (*Circuit, Fault, error) {
	rng := rand.New(rand.NewSource(seed))
	cp := c.Clone()

	var candidates []int
	for i, g := range cp.Gates {
		switch g.Type {
		case GateInput, GateConst0, GateConst1:
			continue
		}
		switch kind {
		case FaultWrongGate:
			if len(g.Fanin) >= 2 {
				candidates = append(candidates, i)
			}
		case FaultSwappedFanin:
			if len(g.Fanin) >= 2 && g.Fanin[0] != g.Fanin[1] {
				candidates = append(candidates, i)
			}
		default:
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil, Fault{}, fmt.Errorf("netlist: no gate eligible for %v fault", kind)
	}
	gi := candidates[rng.Intn(len(candidates))]
	g := &cp.Gates[gi]
	fault := Fault{Kind: kind, Gate: gi, Prev: g.Type}

	switch kind {
	case FaultWrongGate:
		alternatives := []GateType{GateAnd, GateOr, GateNand, GateNor, GateXor, GateXnor}
		for {
			alt := alternatives[rng.Intn(len(alternatives))]
			if alt != g.Type {
				g.Type = alt
				break
			}
		}
	case FaultStuckAt0:
		g.Type = GateConst0
		g.Fanin = nil
	case FaultStuckAt1:
		g.Type = GateConst1
		g.Fanin = nil
	case FaultSwappedFanin:
		g.Fanin[0], g.Fanin[1] = g.Fanin[1], g.Fanin[0]
	}
	if err := cp.Validate(); err != nil {
		return nil, Fault{}, fmt.Errorf("netlist: fault injection broke the circuit: %w", err)
	}
	return cp, fault, nil
}
