package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const sampleBench = `
# c17-like sample
INPUT(g1)
INPUT(g2)
INPUT(g3)
INPUT(g6)
INPUT(g7)
OUTPUT(g22)
OUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
`

func TestParseSample(t *testing.T) {
	c, err := Parse("c17", strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 5 || c.NumOutputs() != 2 {
		t.Fatalf("io counts: %d/%d", c.NumInputs(), c.NumOutputs())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// NAND semantics spot check: all inputs 1 makes g10 = 0, g22 = 1.
	out := c.Eval([]bool{true, true, true, true, true})
	// g11 = NAND(1,1)=0; g16 = NAND(1,0)=1; g10 = 0 -> g22 = NAND(0,1)=1
	// g19 = NAND(0,1)=1 -> g23 = NAND(1,1)=0
	if out[0] != true || out[1] != false {
		t.Fatalf("c17 eval = %v", out)
	}
}

func TestParseOutOfOrderDefinitions(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(t, b)
t = NOT(a)
`
	c, err := Parse("ooo", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := c.Eval([]bool{false, true})
	if out[0] != true {
		t.Fatalf("NOT(0) AND 1 = %v", out[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"cycle":     "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = NOT(y)\n",
		"undefined": "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n",
		"dup":       "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n",
		"badfn":     "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n",
		"noeq":      "INPUT(a)\nOUTPUT(y)\nsomething weird\n",
		"badout":    "INPUT(a)\nOUTPUT(ghost)\na2 = NOT(a)\n",
	}
	for name, src := range cases {
		if _, err := Parse(name, strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	circuits := []*Circuit{
		Multiplier(4),
		RippleAdder(5),
		Comparator(3),
		C3540Like(),
	}
	rng := rand.New(rand.NewSource(3))
	for _, orig := range circuits {
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Fatalf("%s: write: %v", orig.Name, err)
		}
		parsed, err := Parse(orig.Name, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: parse: %v", orig.Name, err)
		}
		if parsed.NumInputs() != orig.NumInputs() || parsed.NumOutputs() != orig.NumOutputs() {
			t.Fatalf("%s: io mismatch after round trip", orig.Name)
		}
		// Input order may be preserved by construction; verify behaviour
		// on random vectors, matching inputs by name.
		namePos := make(map[string]int)
		for pos, gi := range parsed.Inputs {
			namePos[parsed.Gates[gi].Name] = pos
		}
		for trial := 0; trial < 50; trial++ {
			in := make([]bool, orig.NumInputs())
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			in2 := make([]bool, len(in))
			for pos, gi := range orig.Inputs {
				in2[namePos[orig.Gates[gi].Name]] = in[pos]
			}
			o1, o2 := orig.Eval(in), parsed.Eval(in2)
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("%s: behaviour differs after round trip (trial %d, output %d)",
						orig.Name, trial, i)
				}
			}
		}
	}
}
