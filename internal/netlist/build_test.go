package netlist

import (
	"math/rand"
	"testing"

	"bfbdd/internal/core"
)

func buildKernels(levels int) map[string]*core.Kernel {
	return map[string]*core.Kernel{
		"df":  core.NewKernel(core.Options{Levels: levels, Engine: core.EngineDF}),
		"pbf": core.NewKernel(core.Options{Levels: levels, Engine: core.EnginePBF, EvalThreshold: 64, GroupSize: 8}),
		"par": core.NewKernel(core.Options{
			Levels: levels, Engine: core.EnginePar, Workers: 3,
			EvalThreshold: 64, GroupSize: 8, Stealing: true,
		}),
	}
}

// checkBuildAgainstSim verifies the BDD build against gate-level
// simulation on random (or exhaustive, if small) input vectors.
func checkBuildAgainstSim(t *testing.T, k *core.Kernel, c *Circuit, inputLevel []int, trials int) {
	t.Helper()
	res, err := Build(k, c, inputLevel)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	rng := rand.New(rand.NewSource(77))
	n := c.NumInputs()
	exhaustive := n <= 10
	if exhaustive {
		trials = 1 << n
	}
	assign := make([]bool, k.Levels())
	in := make([]bool, n)
	for trial := 0; trial < trials; trial++ {
		for i := range in {
			if exhaustive {
				in[i] = trial>>i&1 == 1
			} else {
				in[i] = rng.Intn(2) == 1
			}
		}
		for pos, lvl := range inputLevel {
			assign[lvl] = in[pos]
		}
		want := c.Eval(in)
		refs := res.Refs()
		for o, r := range refs {
			if got := k.Eval(r, assign); got != want[o] {
				t.Fatalf("trial %d output %d: BDD=%v sim=%v", trial, o, got, want[o])
			}
		}
	}
}

func identityOrder(n int) []int {
	lv := make([]int, n)
	for i := range lv {
		lv[i] = i
	}
	return lv
}

func TestBuildSmallCircuitsAllEngines(t *testing.T) {
	circuits := []*Circuit{
		RippleAdder(3),
		Multiplier(3),
		Comparator(4),
		Parity(9),
	}
	for _, c := range circuits {
		for name, k := range buildKernels(c.NumInputs()) {
			t.Run(c.Name+"/"+name, func(t *testing.T) {
				checkBuildAgainstSim(t, k, c, identityOrder(c.NumInputs()), 0)
			})
		}
	}
}

func TestBuildWithGC(t *testing.T) {
	// Aggressive auto-GC during a build with many intermediate gates.
	c := Multiplier(5)
	k := core.NewKernel(core.Options{
		Levels: c.NumInputs(), Engine: core.EnginePBF,
		EvalThreshold: 32, GroupSize: 8,
		GCMinNodes: 32, GCGrowth: 1.2,
	})
	checkBuildAgainstSim(t, k, c, identityOrder(c.NumInputs()), 0)
	if k.Memory().GCCount == 0 {
		t.Fatal("expected garbage collections during the build")
	}
}

func TestBuildParallelWithGC(t *testing.T) {
	c := C3540LikeScaled(6)
	k := core.NewKernel(core.Options{
		Levels: c.NumInputs(), Engine: core.EnginePar, Workers: 4,
		EvalThreshold: 128, GroupSize: 16, Stealing: true,
		GCMinNodes: 256, GCGrowth: 1.3,
	})
	checkBuildAgainstSim(t, k, c, identityOrder(c.NumInputs()), 64)
}

func TestBuildRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := Random(8, 60, seed)
		k := core.NewKernel(core.Options{Levels: 8, Engine: core.EnginePBF, EvalThreshold: 16, GroupSize: 4})
		checkBuildAgainstSim(t, k, c, identityOrder(8), 0)
	}
}

func TestBuildAdderEquivalence(t *testing.T) {
	// Ripple-carry and carry-lookahead adders must produce identical
	// canonical BDDs — the equivalence-checking use case from the paper's
	// introduction.
	const w = 6
	ra, cla := RippleAdder(w), CarryLookaheadAdder(w)
	k := core.NewKernel(core.Options{Levels: ra.NumInputs(), Engine: core.EnginePBF})
	lv := identityOrder(ra.NumInputs())
	r1, err := Build(k, ra, lv)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Release()
	r2, err := Build(k, cla, lv)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Release()
	refs1, refs2 := r1.Refs(), r2.Refs()
	for i := range refs1 {
		if refs1[i] != refs2[i] {
			t.Fatalf("output %d differs: equivalence check failed", i)
		}
	}
}

func TestBuildFaultDetection(t *testing.T) {
	// A single gate fault must be caught by BDD comparison, and the XOR
	// of the two versions yields a counterexample (paper §1).
	const w = 4
	good := RippleAdder(w)
	bad := RippleAdder(w)
	// Inject a fault: flip one gate type (an AND in a full adder to OR).
	for i := range bad.Gates {
		if bad.Gates[i].Type == GateAnd {
			bad.Gates[i].Type = GateOr
			break
		}
	}
	k := core.NewKernel(core.Options{Levels: good.NumInputs(), Engine: core.EnginePBF})
	lv := identityOrder(good.NumInputs())
	rg, err := Build(k, good, lv)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Build(k, bad, lv)
	if err != nil {
		t.Fatal(err)
	}
	foundDiff := false
	for i := range rg.Refs() {
		g, b := rg.Refs()[i], rb.Refs()[i]
		if g == b {
			continue
		}
		foundDiff = true
		miter := k.Apply(core.OpXor, g, b)
		cex, ok := k.AnySat(miter)
		if !ok {
			t.Fatal("differing outputs but XOR unsatisfiable")
		}
		// The counterexample must actually distinguish the circuits.
		assign := make([]bool, k.Levels())
		for lvl, v := range cex {
			assign[lvl] = v == 1
		}
		if k.Eval(g, assign) == k.Eval(b, assign) {
			t.Fatal("counterexample does not distinguish the outputs")
		}
	}
	if !foundDiff {
		t.Fatal("fault injection changed nothing")
	}
}

func TestBuildBadArguments(t *testing.T) {
	c := Parity(4)
	k := core.NewKernel(core.Options{Levels: 4, Engine: core.EngineDF})
	if _, err := Build(k, c, []int{0, 1, 2}); err == nil {
		t.Fatal("short inputLevel accepted")
	}
	if _, err := Build(k, c, []int{0, 1, 2, 2}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	small := core.NewKernel(core.Options{Levels: 2, Engine: core.EngineDF})
	if _, err := Build(small, c, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("undersized kernel accepted")
	}
}

func TestBuildPinHygiene(t *testing.T) {
	c := Multiplier(3)
	k := core.NewKernel(core.Options{Levels: c.NumInputs(), Engine: core.EnginePBF})
	res, err := Build(k, c, identityOrder(c.NumInputs()))
	if err != nil {
		t.Fatal(err)
	}
	if k.NumPins() != c.NumOutputs() {
		t.Fatalf("pins after build = %d want %d (intermediates leaked)", k.NumPins(), c.NumOutputs())
	}
	res.Release()
	if k.NumPins() != 0 {
		t.Fatalf("pins after release = %d", k.NumPins())
	}
	k.GC()
	if k.NumNodes() != 0 {
		t.Fatalf("nodes after release+GC = %d", k.NumNodes())
	}
}
