package netlist

import (
	"math/rand"
	"testing"
)

// bitsOf expands v into w little-endian bits.
func bitsOf(v uint64, w int) []bool {
	bits := make([]bool, w)
	for i := range bits {
		bits[i] = v>>i&1 == 1
	}
	return bits
}

// valOf packs bits little-endian.
func valOf(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << i
		}
	}
	return v
}

func TestRippleAdderExhaustiveSmall(t *testing.T) {
	const w = 4
	c := RippleAdder(w)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 1<<w; a++ {
		for b := uint64(0); b < 1<<w; b++ {
			for cin := uint64(0); cin < 2; cin++ {
				in := append(append(bitsOf(a, w), bitsOf(b, w)...), cin == 1)
				out := c.Eval(in)
				got := valOf(out) // w sum bits + carry = w+1 bit value
				if got != a+b+cin {
					t.Fatalf("%d+%d+%d = %d, circuit says %d", a, b, cin, a+b+cin, got)
				}
			}
		}
	}
}

func TestRippleAdderRandomWide(t *testing.T) {
	const w = 32
	c := RippleAdder(w)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() & (1<<w - 1)
		b := rng.Uint64() & (1<<w - 1)
		cin := rng.Uint64() & 1
		in := append(append(bitsOf(a, w), bitsOf(b, w)...), cin == 1)
		if got := valOf(c.Eval(in)); got != a+b+cin {
			t.Fatalf("%d+%d+%d: got %d", a, b, cin, got)
		}
	}
}

func TestCarryLookaheadMatchesRipple(t *testing.T) {
	for _, w := range []int{3, 4, 8, 13} {
		ra, cla := RippleAdder(w), CarryLookaheadAdder(w)
		if err := cla.Validate(); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		rng := rand.New(rand.NewSource(int64(w)))
		for trial := 0; trial < 100; trial++ {
			a := rng.Uint64() & (1<<w - 1)
			b := rng.Uint64() & (1<<w - 1)
			cin := rng.Uint64() & 1
			in := append(append(bitsOf(a, w), bitsOf(b, w)...), cin == 1)
			o1, o2 := ra.Eval(in), cla.Eval(in)
			if valOf(o1) != valOf(o2) {
				t.Fatalf("w=%d: ripple %d != cla %d for %d+%d+%d", w, valOf(o1), valOf(o2), a, b, cin)
			}
		}
	}
}

func TestMultiplierExhaustiveSmall(t *testing.T) {
	const n = 4
	c := Multiplier(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumOutputs() != 2*n {
		t.Fatalf("outputs = %d want %d", c.NumOutputs(), 2*n)
	}
	for a := uint64(0); a < 1<<n; a++ {
		for b := uint64(0); b < 1<<n; b++ {
			in := append(bitsOf(a, n), bitsOf(b, n)...)
			if got := valOf(c.Eval(in)); got != a*b {
				t.Fatalf("%d*%d = %d, circuit says %d", a, b, a*b, got)
			}
		}
	}
}

func TestMultiplierRandomWide(t *testing.T) {
	for _, n := range []int{8, 13, 14} {
		c := Multiplier(n)
		if err := c.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 100; trial++ {
			a := rng.Uint64() & (1<<n - 1)
			b := rng.Uint64() & (1<<n - 1)
			in := append(bitsOf(a, n), bitsOf(b, n)...)
			if got := valOf(c.Eval(in)); got != a*b {
				t.Fatalf("n=%d: %d*%d = %d, circuit says %d", n, a, b, a*b, got)
			}
		}
	}
}

func TestComparator(t *testing.T) {
	const w = 5
	c := Comparator(w)
	rng := rand.New(rand.NewSource(9))
	check := func(a, b uint64) {
		out := c.Eval(append(bitsOf(a, w), bitsOf(b, w)...))
		lt, eq, gt := out[0], out[1], out[2]
		if lt != (a < b) || eq != (a == b) || gt != (a > b) {
			t.Fatalf("cmp(%d,%d) = lt%v eq%v gt%v", a, b, lt, eq, gt)
		}
	}
	for a := uint64(0); a < 1<<w; a++ {
		check(a, a)
		check(a, rng.Uint64()&(1<<w-1))
		check(rng.Uint64()&(1<<w-1), a)
	}
}

func TestPriorityEncoder(t *testing.T) {
	const w = 12
	c := PriorityEncoder(w)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		req := rng.Uint64() & (1<<w - 1)
		out := c.Eval(bitsOf(req, w))
		bits := 0
		for 1<<bits < w {
			bits++
		}
		enc := valOf(out[:bits])
		valid := out[bits]
		if req == 0 {
			if valid {
				t.Fatalf("req=0 but valid")
			}
			continue
		}
		want := uint64(0)
		for i := w - 1; i >= 0; i-- {
			if req>>i&1 == 1 {
				want = uint64(i)
				break
			}
		}
		if !valid || enc != want {
			t.Fatalf("req=%012b: enc=%d valid=%v want %d", req, enc, valid, want)
		}
	}
}

// aluModel mirrors aluInto's specification.
func aluModel(a, b uint64, op int, cin uint64, w int) (res uint64, cout, zero bool) {
	mask := uint64(1)<<w - 1
	switch op {
	case 0:
		full := a + b + cin
		res, cout = full&mask, full>>w&1 == 1
	case 1:
		full := a + (^b & mask) + 1 // two's complement subtract (cin OR sub = 1)
		if cin == 1 {
			full = a + (^b & mask) + 1 // OR semantics: carry-in still 1
		}
		res, cout = full&mask, full>>w&1 == 1
	case 2:
		res = a & b
	case 3:
		res = a | b
	case 4:
		res = a ^ b
	case 5:
		res = ^(a | b) & mask
	case 6:
		res = a << 1 & mask
	case 7:
		res = a
	}
	return res, cout, res == 0
}

func TestALUAgainstModel(t *testing.T) {
	const w = 8
	c := ALU(w)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		a := rng.Uint64() & (1<<w - 1)
		b := rng.Uint64() & (1<<w - 1)
		op := rng.Intn(8)
		cin := rng.Uint64() & 1
		in := append(bitsOf(a, w), bitsOf(b, w)...)
		in = append(in, bitsOf(uint64(op), 3)...)
		in = append(in, cin == 1)
		out := c.Eval(in)
		res := valOf(out[:w])
		wantRes, wantCout, wantZero := aluModel(a, b, op, cin, w)
		if res != wantRes {
			t.Fatalf("alu op%d(%d,%d,cin=%d): res %d want %d", op, a, b, cin, res, wantRes)
		}
		if op <= 1 && out[w] != wantCout {
			t.Fatalf("alu op%d(%d,%d,cin=%d): cout %v want %v", op, a, b, cin, out[w], wantCout)
		}
		if out[w+1] != wantZero {
			t.Fatalf("alu op%d(%d,%d): zero %v want %v", op, a, b, out[w+1], wantZero)
		}
	}
}

func TestParity(t *testing.T) {
	const n = 9
	c := Parity(n)
	for v := uint64(0); v < 1<<n; v++ {
		want := false
		for i := 0; i < n; i++ {
			want = want != (v>>i&1 == 1)
		}
		if got := c.Eval(bitsOf(v, n))[0]; got != want {
			t.Fatalf("parity(%b) = %v want %v", v, got, want)
		}
	}
}

func TestC3540LikeStructure(t *testing.T) {
	const mulBits = 6
	c := C3540LikeScaled(mulBits)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	mulZeros := make([]bool, 2*mulBits)
	// ALU-portion spot check: bcd=0 and zero multiplier operands make the
	// correction and multiply stages no-ops, so the data outputs must
	// match the plain ALU model.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() & 0xFF
		b := rng.Uint64() & 0xFF
		op := rng.Intn(8)
		cin := rng.Uint64() & 1
		in := append(bitsOf(a, 8), bitsOf(b, 8)...)
		in = append(in, bitsOf(uint64(op), 3)...)
		in = append(in, cin == 1, false /* bcd off */)
		in = append(in, mulZeros...)
		out := c.Eval(in)
		wantRes, _, _ := aluModel(a, b, op, cin, 8)
		if got := valOf(out[:8]); got != wantRes {
			t.Fatalf("c3540-like op%d(%d,%d,cin=%d): %d want %d", op, a, b, cin, got, wantRes)
		}
	}
	// BCD correction: 5+7 in BCD-add mode must produce 0x12.
	in := append(bitsOf(5, 8), bitsOf(7, 8)...)
	in = append(in, bitsOf(0, 3)...) // op 0 = add
	in = append(in, false, true)     // cin=0, bcd on
	in = append(in, mulZeros...)
	out := c.Eval(in)
	if got := valOf(out[:8]); got != 0x12 {
		t.Fatalf("BCD 5+7 = %#x want 0x12", got)
	}
	// Multiply unit: with a=b=0 and op=2 (AND) the ALU result is 0, so
	// the data outputs expose the middle product bits directly.
	rngM := rand.New(rand.NewSource(33))
	for trial := 0; trial < 100; trial++ {
		m1 := rngM.Uint64() & (1<<mulBits - 1)
		m2 := rngM.Uint64() & (1<<mulBits - 1)
		in := make([]bool, 0, c.NumInputs())
		in = append(in, bitsOf(0, 8)...) // a = 0
		in = append(in, bitsOf(0, 8)...) // b = 0
		in = append(in, bitsOf(2, 3)...) // op = AND
		in = append(in, false, false)    // cin, bcd
		in = append(in, bitsOf(m1, mulBits)...)
		in = append(in, bitsOf(m2, mulBits)...)
		out := c.Eval(in)
		prod := m1 * m2
		mid := mulBits - 2
		for i := 0; i < 8; i++ {
			want := prod>>((mid+i)%(2*mulBits))&1 == 1
			if out[i] != want {
				t.Fatalf("mul mix bit %d: got %v want %v (m1=%d m2=%d)", i, out[i], want, m1, m2)
			}
		}
	}
}

func TestC2670LikeStructure(t *testing.T) {
	const mulBits = 6
	c := C2670LikeScaled(mulBits)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	const w = 12
	mulZeros := make([]bool, 2*mulBits)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() & (1<<w - 1)
		b := rng.Uint64() & (1<<w - 1)
		op := rng.Intn(8)
		cin := rng.Uint64() & 1
		irq := rng.Uint64() & (1<<w - 1)
		mask := rng.Uint64() & (1<<w - 1)
		sel := rng.Intn(2) == 1
		in := append(bitsOf(a, w), bitsOf(b, w)...)
		in = append(in, bitsOf(uint64(op), 3)...)
		in = append(in, cin == 1)
		in = append(in, bitsOf(irq, w)...)
		in = append(in, bitsOf(mask, w)...)
		in = append(in, sel)
		in = append(in, mulZeros...)
		out := c.Eval(in)

		// Comparator flags are unconditional outputs.
		lt, eq := out[w+2], out[w+3]
		if lt != (a < b) || eq != (a == b) {
			t.Fatalf("flags lt=%v eq=%v for a=%d b=%d", lt, eq, a, b)
		}
		if !sel {
			wantRes, _, _ := aluModel(a, b, op, cin, w)
			if got := valOf(out[:w]); got != wantRes {
				t.Fatalf("sel=0 alu op%d: %d want %d", op, valOf(out[:w]), wantRes)
			}
		} else {
			masked := irq & mask
			valid := out[w+4]
			if valid != (masked != 0) {
				t.Fatalf("valid=%v for masked=%b", valid, masked)
			}
			if masked != 0 {
				want := uint64(0)
				for i := w - 1; i >= 0; i-- {
					if masked>>i&1 == 1 {
						want = uint64(i)
						break
					}
				}
				if got := valOf(out[:4]); got != want {
					t.Fatalf("sel=1 encoder: %d want %d (masked=%b)", got, want, masked)
				}
			}
		}
	}
}

func TestRandomCircuitDeterministic(t *testing.T) {
	c1 := Random(10, 100, 7)
	c2 := Random(10, 100, 7)
	if err := c1.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		in := make([]bool, 10)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		o1, o2 := c1.Eval(in), c2.Eval(in)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatal("same seed, different circuits")
			}
		}
	}
	c3 := Random(10, 100, 8)
	diff := false
	for trial := 0; trial < 50 && !diff; trial++ {
		in := make([]bool, 10)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		o1, o3 := c1.Eval(in), c3.Eval(in)
		for i := range o1 {
			if o1[i] != o3[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical behaviour (suspicious)")
	}
}

func TestCircuitStats(t *testing.T) {
	c := Multiplier(4)
	if c.Depth() == 0 {
		t.Fatal("multiplier depth 0")
	}
	counts := c.CountByType()
	if counts[GateInput] != 8 {
		t.Fatalf("inputs = %d", counts[GateInput])
	}
	if counts[GateAnd] < 16 {
		t.Fatalf("partial products missing: %d AND gates", counts[GateAnd])
	}
	fo := c.FanoutCounts()
	total := 0
	for _, f := range fo {
		total += f
	}
	if total == 0 {
		t.Fatal("no fanout recorded")
	}
}
