// Multiplier reproduces the paper's headline workload interactively:
// building the BDDs of an n×n array multiplier (the circuit family behind
// mult-13 and mult-14, generated from the ISCAS85 C6288 structure) and
// reporting the per-output-bit BDD sizes, which grow exponentially toward
// the middle product bits — the reason multipliers are the canonical hard
// case for BDDs (Bryant 1991, cited as [6] in the paper).
//
// It then compares the construction engines on the same circuit.
//
// Run with:
//
//	go run ./examples/multiplier [-bits 10] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bfbdd/internal/core"
	"bfbdd/internal/netlist"
	"bfbdd/internal/order"
)

func main() {
	bits := flag.Int("bits", 10, "multiplier width (paper used 13, 14, 16)")
	workers := flag.Int("workers", 4, "workers for the parallel engine")
	flag.Parse()

	circ := netlist.Multiplier(*bits)
	inputOrder := order.Compute(circ, order.DFS, 0)
	fmt.Printf("mult-%d: %d gates, %d inputs, %d outputs\n",
		*bits, circ.NumGates(), circ.NumInputs(), circ.NumOutputs())

	// Build once with the parallel engine and show the size profile.
	k := core.NewKernel(core.Options{
		Levels:   circ.NumInputs(),
		Engine:   core.EnginePar,
		Workers:  *workers,
		Stealing: true,
	})
	start := time.Now()
	res, err := netlist.Build(k, circ, inputOrder)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("built in %v; per-output-bit BDD sizes:\n", time.Since(start).Round(time.Millisecond))
	maxSize := 0
	for _, r := range res.Refs() {
		if s := k.Size(r); s > maxSize {
			maxSize = s
		}
	}
	for i, r := range res.Refs() {
		size := k.Size(r)
		bar := int(50 * float64(size) / float64(maxSize))
		fmt.Printf("  p%-3d %9d |%s\n", i, size, stars(bar))
	}
	fmt.Printf("total (shared): %d nodes\n", k.SizeMulti(res.Refs()))
	res.Release()

	// Engine comparison on the same circuit.
	fmt.Println("\nengine comparison:")
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"df", core.Options{Engine: core.EngineDF}},
		{"bf", core.Options{Engine: core.EngineBF}},
		{"hybrid", core.Options{Engine: core.EngineHybrid}},
		{"pbf", core.Options{Engine: core.EnginePBF}},
		{"par", core.Options{Engine: core.EnginePar, Workers: *workers, Stealing: true}},
	} {
		cfg.opts.Levels = circ.NumInputs()
		k := core.NewKernel(cfg.opts)
		start := time.Now()
		res, err := netlist.Build(k, circ, inputOrder)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := k.TotalStats()
		fmt.Printf("  %-8s %8v  %6.2fM ops  peak %6.1f MB  %d GCs\n",
			cfg.name, time.Since(start).Round(time.Millisecond),
			float64(st.Ops)/1e6, float64(k.Memory().PeakBytes)/(1<<20),
			k.Memory().GCCount)
		res.Release()
	}
}

func stars(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '*'
	}
	return string(b)
}
