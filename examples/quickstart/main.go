// Quickstart: the smallest useful tour of the bfbdd public API — build a
// few Boolean functions, check equivalences, count and extract satisfying
// assignments, and print a diagram.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"bfbdd"
)

func main() {
	// A manager over four variables, using the paper's parallel partial
	// breadth-first engine with 4 workers.
	m := bfbdd.New(4,
		bfbdd.WithEngine(bfbdd.EnginePar),
		bfbdd.WithWorkers(4),
	)

	a, b, c, d := m.Var(0), m.Var(1), m.Var(2), m.Var(3)

	// The paper's running example (Figure 1):
	// f = (¬b ∧ ¬c) ∨ (a ∧ b ∧ c) — built two structurally different ways.
	f1 := b.Not().And(c.Not()).Or(a.And(b).And(c))
	f2 := a.And(b).And(c).Or(b.Or(c).Not())

	// Canonicity makes equivalence checking a constant-time comparison.
	fmt.Println("f1 == f2:", f1.Equal(f2))
	fmt.Println("f1 size :", f1.Size(), "nodes")

	// Satisfiability: count and extract assignments.
	fmt.Println("satcount:", f1.SatCount(), "of 16 assignments")
	if assign, ok := f1.AnySat(); ok {
		fmt.Println("witness :", assign)
	}

	// Quantification: does some value of a make f1 true, for all b?
	g := f1.Exists(0).Forall(1)
	fmt.Println("∀b ∃a f :", g.Equal(m.Zero()) == false)

	// XOR as a difference detector: f1 ⊕ f2 is the constant 0 exactly
	// when the functions agree everywhere.
	if f1.Xor(f2).IsZero() {
		fmt.Println("xor     : functions agree on every assignment")
	}

	// A function of the remaining variable, for variety.
	h := f1.And(d.Or(a))
	fmt.Println("h size  :", h.Size(), "satcount:", h.SatCount())

	// Render f1 as Graphviz DOT on stdout (pipe to `dot -Tpng`).
	fmt.Println("\n--- f1 as DOT ---")
	if err := bfbdd.WriteDOT(os.Stdout, []string{"f1"}, f1); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Library statistics from the build.
	st := m.Stats()
	fmt.Printf("\nstats: %d Shannon steps, %d cache hits, %d live nodes\n",
		st.Ops, st.CacheHits, st.NumNodes)
}
