// Reachability performs symbolic model checking — the formal-verification
// application motivating the paper (§1) — on a synchronous counter with a
// bug: BDD-encoded transition relation, breadth-first image computation
// via relational products (∃ current-state, inputs . T ∧ S), and a safety
// check with counterexample extraction.
//
// The system is an n-bit saturating counter that should never reach the
// all-ones state when its "limit" input is wired low; a fault in the
// carry chain makes the bad state reachable, and the checker finds it.
//
// Run with:
//
//	go run ./examples/reachability [-bits 8] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"time"

	"bfbdd"
)

func main() {
	bits := flag.Int("bits", 8, "counter width")
	workers := flag.Int("workers", 4, "parallel workers")
	flag.Parse()
	n := *bits

	// Variable layout: current state s[i] at 2i, next state s'[i] at 2i+1
	// (interleaved current/next is the standard good order for transition
	// relations), plus one input variable at 2n.
	m := bfbdd.New(2*n+1,
		bfbdd.WithEngine(bfbdd.EnginePar),
		bfbdd.WithWorkers(*workers),
	)
	cur := func(i int) *bfbdd.BDD { return m.Var(2 * i) }
	next := func(i int) *bfbdd.BDD { return m.Var(2*i + 1) }
	enable := m.Var(2 * n)

	curVars := make([]int, n)
	nextVars := make([]int, n)
	for i := 0; i < n; i++ {
		curVars[i], nextVars[i] = 2*i, 2*i+1
	}

	// Transition relation of the counter: when enabled, increment unless
	// already at max-1 (the saturation guard keeps the all-ones state
	// unreachable); when disabled, hold.
	build := func(faulty bool) *bfbdd.BDD {
		// guard: state == 2^n - 2 (max value the counter may reach)
		guard := m.One()
		for i := 0; i < n; i++ {
			if i == 0 {
				guard = guard.And(cur(i).Not())
			} else {
				guard = guard.And(cur(i))
			}
		}
		trans := m.One()
		carry := enable.And(guard.Not()) // increment only below the guard
		if faulty {
			carry = enable // BUG: saturation guard dropped from the carry
		}
		for i := 0; i < n; i++ {
			sum := cur(i).Xor(carry)
			nextCarry := cur(i).And(carry)
			trans = trans.And(next(i).Xnor(sum))
			carry = nextCarry
		}
		return trans
	}

	for _, faulty := range []bool{false, true} {
		label := "correct"
		if faulty {
			label = "faulty "
		}
		trans := build(faulty)

		// Breadth-first reachability from state 0.
		start := time.Now()
		reached := m.One()
		for i := 0; i < n; i++ {
			reached = reached.And(cur(i).Not())
		}
		frontier := reached
		iterations := 0
		for !frontier.IsZero() {
			iterations++
			// Image: ∃ cur, enable . T ∧ frontier, then rename next→cur.
			img := trans.And(frontier).Exists(append(curVars, 2*n)...)
			renamed := img
			for i := n - 1; i >= 0; i-- {
				renamed = renamed.Compose(nextVars[i], cur(i))
			}
			// Quantify away the (now substituted-in) next-state vars that
			// remain untouched: renamed is already over cur vars only.
			newStates := renamed.Diff(reached)
			reached = reached.Or(newStates)
			frontier = newStates
		}

		// Safety: the all-ones state must be unreachable.
		bad := m.One()
		for i := 0; i < n; i++ {
			bad = bad.And(cur(i))
		}
		violation := reached.And(bad)
		fmt.Printf("%s counter: %v reachable states in %d iterations (%v); all-ones reachable: %v\n",
			label, reached.SatCount().String(), iterations,
			time.Since(start).Round(time.Millisecond), !violation.IsZero())

		if !violation.IsZero() {
			if assign, ok := violation.AnySat(); ok {
				val := uint64(0)
				for i := 0; i < n; i++ {
					if assign[2*i] {
						val |= 1 << i
					}
				}
				fmt.Printf("  counterexample state: %d (binary %0*b)\n", val, n, val)
			}
		}
	}

	st := m.Stats()
	fmt.Printf("stats: %.2fM ops, %d live nodes, peak %.1f MB\n",
		float64(st.Ops)/1e6, st.NumNodes, float64(st.PeakBytes)/(1<<20))
}
