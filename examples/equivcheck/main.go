// Equivcheck demonstrates the paper's motivating use case (§1): formal
// equivalence checking of two circuit implementations via BDDs, and
// counterexample extraction when an implementation is faulty.
//
// Two structurally different 16-bit adders — ripple-carry and 4-bit-group
// carry-lookahead — are converted to BDDs; because BDDs are canonical,
// checking each output pair reduces to comparing refs. Then a fault is
// injected into the lookahead adder, and the XOR of the good and faulty
// outputs (the paper's counterexample construction) yields an input
// vector exhibiting the bug.
//
// Run with:
//
//	go run ./examples/equivcheck [-bits 16] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bfbdd/internal/core"
	"bfbdd/internal/netlist"
	"bfbdd/internal/order"
)

func main() {
	bits := flag.Int("bits", 16, "adder width")
	workers := flag.Int("workers", 4, "parallel workers")
	flag.Parse()

	ripple := netlist.RippleAdder(*bits)
	cla := netlist.CarryLookaheadAdder(*bits)
	fmt.Printf("ripple-carry: %d gates; carry-lookahead: %d gates\n",
		ripple.NumGates(), cla.NumGates())

	// One kernel, one variable order: both circuits read the same
	// inputs, so their BDDs land in the same canonical space.
	k := core.NewKernel(core.Options{
		Levels:   ripple.NumInputs(),
		Engine:   core.EnginePar,
		Workers:  *workers,
		Stealing: true,
	})
	inputOrder := order.Compute(ripple, order.Interleave, 0)

	start := time.Now()
	rippleBDDs := mustBuild(k, ripple, inputOrder)
	claBDDs := mustBuild(k, cla, inputOrder)
	fmt.Printf("built both adders symbolically in %v\n", time.Since(start).Round(time.Millisecond))

	// Equivalence: canonical refs make this a pointer comparison per
	// output.
	equal := true
	for i := range rippleBDDs.Refs() {
		if rippleBDDs.Refs()[i] != claBDDs.Refs()[i] {
			equal = false
			fmt.Printf("output %d DIFFERS\n", i)
		}
	}
	fmt.Println("implementations equivalent:", equal)
	claBDDs.Release()

	// Inject a fault: a pseudo-random wrong-gate mutation somewhere in the
	// lookahead adder (a classic fabrication bug).
	faulty, fault, err := netlist.InjectFault(cla, netlist.FaultWrongGate, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("injected %v fault at gate %d (%v → %v)\n",
		fault.Kind, fault.Gate, fault.Prev, faulty.Gates[fault.Gate].Type)
	faultyBDDs := mustBuild(k, faulty, inputOrder)

	// Counterexample via XOR (paper §1: "counterexamples can be obtained
	// by XOR-ing the BDD representations").
	found := false
	for i := range rippleBDDs.Refs() {
		good, bad := rippleBDDs.Refs()[i], faultyBDDs.Refs()[i]
		if good == bad {
			continue
		}
		miter := k.Apply(core.OpXor, good, bad)
		cex, ok := k.AnySat(miter)
		if !ok {
			continue
		}
		found = true
		a, b, cin := decodeInputs(cex, inputOrder, *bits)
		fmt.Printf("fault detected at sum bit %d\n", i)
		fmt.Printf("counterexample: a=%d b=%d cin=%d\n", a, b, cin)
		fmt.Printf("  correct sum: %d\n", a+b+cin)
		fmt.Printf("  faulty  sum: %d\n", simulate(faulty, a, b, cin, *bits))
		break
	}
	if !found {
		fmt.Println("fault was silent (masked by this output set)")
	}
	rippleBDDs.Release()
	faultyBDDs.Release()
}

func mustBuild(k *core.Kernel, c *netlist.Circuit, inputOrder []int) *netlist.BuildResult {
	res, err := netlist.Build(k, c, inputOrder)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}

// decodeInputs converts a satisfying assignment (indexed by BDD level)
// back to the adder's operand values. Unassigned (don't-care) variables
// read as 0.
func decodeInputs(cex []int8, inputOrder []int, bits int) (a, b, cin uint64) {
	bit := func(pos int) uint64 {
		if cex[inputOrder[pos]] == 1 {
			return 1
		}
		return 0
	}
	for i := 0; i < bits; i++ {
		a |= bit(i) << i
		b |= bit(bits+i) << i
	}
	cin = bit(2 * bits)
	return a, b, cin
}

// simulate runs the gate-level simulator on concrete operands.
func simulate(c *netlist.Circuit, a, b, cin uint64, bits int) uint64 {
	in := make([]bool, c.NumInputs())
	for i := 0; i < bits; i++ {
		in[i] = a>>i&1 == 1
		in[bits+i] = b>>i&1 == 1
	}
	in[2*bits] = cin == 1
	out := c.Eval(in)
	var sum uint64
	for i, v := range out {
		if v {
			sum |= 1 << i
		}
	}
	return sum
}
