// Nqueens counts the solutions of the N-queens problem symbolically: one
// Boolean variable per board square, one BDD constraint per square, and a
// single SatCount at the end. This is the classic BDD stress test for
// construction throughput — constraint BDDs grow large midway through the
// conjunction — and exercises the engines on a workload very different
// from circuit netlists.
//
// Run with:
//
//	go run ./examples/nqueens [-n 8] [-engine par] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bfbdd"
)

func main() {
	n := flag.Int("n", 8, "board size")
	engineName := flag.String("engine", "par", "df, bf, hybrid, pbf, par")
	workers := flag.Int("workers", 4, "workers for -engine par")
	flag.Parse()

	var engine bfbdd.Engine
	switch *engineName {
	case "df":
		engine = bfbdd.EngineDF
	case "bf":
		engine = bfbdd.EngineBF
	case "hybrid":
		engine = bfbdd.EngineHybrid
	case "pbf":
		engine = bfbdd.EnginePBF
	case "par":
		engine = bfbdd.EnginePar
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engineName)
		os.Exit(1)
	}

	N := *n
	m := bfbdd.New(N*N,
		bfbdd.WithEngine(engine),
		bfbdd.WithWorkers(*workers),
	)
	sq := func(r, c int) *bfbdd.BDD { return m.Var(r*N + c) }

	start := time.Now()
	board := m.One()
	for r := 0; r < N; r++ {
		// Exactly one queen per row: at least one...
		rowAny := m.Zero()
		for c := 0; c < N; c++ {
			rowAny = rowAny.Or(sq(r, c))
		}
		board = board.And(rowAny)

		// ...and no square attacks another.
		for c := 0; c < N; c++ {
			q := sq(r, c)
			noAttack := m.One()
			for c2 := 0; c2 < N; c2++ {
				if c2 != c {
					noAttack = noAttack.And(sq(r, c2).Not()) // same row
				}
			}
			for r2 := 0; r2 < N; r2++ {
				if r2 == r {
					continue
				}
				noAttack = noAttack.And(sq(r2, c).Not()) // same column
				if d := c + (r2 - r); d >= 0 && d < N {
					noAttack = noAttack.And(sq(r2, d).Not()) // diagonal
				}
				if d := c - (r2 - r); d >= 0 && d < N {
					noAttack = noAttack.And(sq(r2, d).Not()) // anti-diagonal
				}
			}
			board = board.And(q.Implies(noAttack))
		}
	}
	elapsed := time.Since(start)

	count := board.SatCount()
	fmt.Printf("%d-queens: %v solutions (BDD: %d nodes, built in %v, engine %s)\n",
		N, count, board.Size(), elapsed.Round(time.Millisecond), engine)

	if assign, ok := board.AnySat(); ok {
		fmt.Println("one solution:")
		for r := 0; r < N; r++ {
			for c := 0; c < N; c++ {
				if assign[r*N+c] {
					fmt.Print(" Q")
				} else {
					fmt.Print(" .")
				}
			}
			fmt.Println()
		}
	}

	st := m.Stats()
	fmt.Printf("stats: %.2fM ops, %d GCs, peak %.1f MB\n",
		float64(st.Ops)/1e6, st.GCCount, float64(st.PeakBytes)/(1<<20))
}
