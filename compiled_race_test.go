package bfbdd_test

import (
	"math/rand"
	"sync"
	"testing"
)

// TestCompiledConcurrentReads is the concurrent-read proof for compiled
// artifacts: ten goroutines hammer Eval and EvalBatch on one artifact
// while the manager that produced it keeps mutating, garbage-collects,
// and is finally closed. Run under -race this must show no data race,
// and every answer must stay byte-identical to the pre-computed truth.
func TestCompiledConcurrentReads(t *testing.T) {
	const (
		numVars  = 12
		readers  = 10
		rounds   = 200
		batchLen = 96
	)
	m, fns := buildMix(t, numVars, 6, 321)
	cf, err := m.Compile(fns...)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	// Ground truth, computed before the manager is disturbed.
	probes := make([][]bool, 512)
	rng := rand.New(rand.NewSource(654))
	for i := range probes {
		probes[i] = assignmentOf(rng.Uint64(), numVars)
	}
	truth := make([][]bool, len(fns))
	for i := range fns {
		truth[i] = cf.EvalBatch(i, probes)
	}

	managerDone := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			waited := false
			for r := 0; r < rounds; r++ {
				if !waited && r == rounds/2 {
					// Make sure at least half of each reader's traffic runs
					// strictly after the source manager is gone.
					<-managerDone
					waited = true
				}
				root := rng.Intn(len(truth))
				if r%2 == 0 {
					at := rng.Intn(len(probes))
					if got := cf.Eval(root, probes[at]); got != truth[root][at] {
						t.Errorf("reader %d round %d: Eval root %d probe %d = %v, want %v",
							g, r, root, at, got, truth[root][at])
						return
					}
				} else {
					at := rng.Intn(len(probes) - batchLen)
					got := cf.EvalBatch(root, probes[at:at+batchLen])
					for j := range got {
						if got[j] != truth[root][at+j] {
							t.Errorf("reader %d round %d: EvalBatch root %d probe %d = %v, want %v",
								g, r, root, at+j, got[j], truth[root][at+j])
							return
						}
					}
				}
			}
		}(g)
	}

	// Meanwhile: churn the source manager, GC it, close it.
	for i := 0; i < 50; i++ {
		f := m.Var(i % numVars).Xor(m.Var((i + 3) % numVars))
		f.Free()
		if i%10 == 9 {
			m.GC()
		}
	}
	m.Close()
	close(managerDone)
	wg.Wait()
}
