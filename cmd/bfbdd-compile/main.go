// Command bfbdd-compile is the offline toolkit for compiled function
// artifacts — the immutable read-path format written by
// Manager.Compile, GET /v1/funcs/{id}/download, and the server's
// funcs/ persistence directory.
//
//	bfbdd-compile build -o out.fn [-raw] file.snap
//	                               restore a snapshot into a fresh
//	                               manager and freeze its roots into a
//	                               compiled artifact
//	bfbdd-compile info file.fn     header, size, and root table
//	bfbdd-compile eval [-root id] file.fn 0110...
//	                               evaluate assignments (one 0/1 string
//	                               per argument, one variable per char)
//	bfbdd-compile satcount [-root id] file.fn
//	                               exact model count
//	bfbdd-compile anysat [-root id] file.fn
//	                               one satisfying assignment, if any
//
// Artifacts never need (or touch) a Manager: every subcommand except
// build runs on the packed array alone.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"bfbdd"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := args[0]; cmd {
	case "build":
		err = runBuild(args[1:])
	case "info":
		err = runInfo(args[1:])
	case "eval":
		err = runEval(args[1:])
	case "satcount":
		err = runSatCount(args[1:])
	case "anysat":
		err = runAnySat(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "bfbdd-compile: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfbdd-compile: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  bfbdd-compile build -o out.fn [-raw] file.snap
                                         compile a snapshot's roots into an artifact
  bfbdd-compile info     file.fn         inspect header and root table
  bfbdd-compile eval     [-root id] file.fn 0110...
                                         evaluate assignments (one 0/1 string each)
  bfbdd-compile satcount [-root id] file.fn
                                         exact satisfying-assignment count
  bfbdd-compile anysat   [-root id] file.fn
                                         one satisfying assignment, if any
`)
}

func loadFunc(path string) (*bfbdd.CompiledFunc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bfbdd.LoadCompiled(bufio.NewReaderSize(f, 1<<20))
}

// rootFlag resolves -root: the published root ID when given, else the
// artifact's first root.
func rootFlag(fn *bfbdd.CompiledFunc, id int64) (int, error) {
	if fn.NumRoots() == 0 {
		return 0, fmt.Errorf("artifact has no roots")
	}
	if id < 0 {
		return 0, nil
	}
	r, ok := fn.RootByID(uint64(id))
	if !ok {
		return 0, fmt.Errorf("artifact has no root id %d (have %v)", id, fn.RootIDs())
	}
	return r, nil
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "", "output artifact file (required)")
	raw := fs.Bool("raw", false, "write raw child references instead of varint deltas")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("build needs -o output")
	}
	if len(fs.Args()) != 1 {
		return fmt.Errorf("build takes exactly one snapshot file")
	}
	path := fs.Args()[0]
	sf, err := os.Open(path)
	if err != nil {
		return err
	}
	m, roots, err := bfbdd.RestoreManager(sf)
	sf.Close()
	if err != nil {
		return err
	}
	defer m.Close()
	fn, err := m.CompileRoots(roots)
	if err != nil {
		return err
	}
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(of, 1<<20)
	var serr error
	if *raw {
		serr = fn.SerializeRaw(bw)
	} else {
		serr = fn.Serialize(bw)
	}
	if serr == nil {
		serr = bw.Flush()
	}
	if serr != nil {
		of.Close()
		os.Remove(*out)
		return serr
	}
	if err := of.Close(); err != nil {
		return err
	}
	ost, _ := os.Stat(*out)
	fmt.Printf("compiled %s -> %s: %d vars, %d nodes, %d roots, %d bytes\n",
		path, *out, fn.NumVars(), fn.NumNodes(), fn.NumRoots(), ost.Size())
	return nil
}

func runInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("info takes exactly one artifact file")
	}
	fn, err := loadFunc(args[0])
	if err != nil {
		return err
	}
	st, _ := os.Stat(args[0])
	fmt.Printf("file:        %s (%d bytes)\n", args[0], st.Size())
	fmt.Printf("variables:   %d\n", fn.NumVars())
	fmt.Printf("nodes:       %d\n", fn.NumNodes())
	fmt.Printf("memory:      %d bytes resident\n", fn.MemBytes())
	identity := true
	for v, l := range fn.Var2Level() {
		if v != l {
			identity = false
			break
		}
	}
	if identity {
		fmt.Printf("order:       identity\n")
	} else {
		fmt.Printf("order:       %v (var -> level)\n", fn.Var2Level())
	}
	fmt.Printf("root table:\n")
	for _, id := range fn.RootIDs() {
		r, _ := fn.RootByID(id)
		fmt.Printf("  id %-8d size %d\n", id, fn.RootSize(r))
	}
	return nil
}

// parseAssignment turns a "0110..." string into a []bool, one variable
// per character.
func parseAssignment(s string, numVars int) ([]bool, error) {
	if len(s) != numVars {
		return nil, fmt.Errorf("assignment %q has %d characters for %d variables", s, len(s), numVars)
	}
	a := make([]bool, numVars)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			a[i] = true
		default:
			return nil, fmt.Errorf("assignment %q: want only 0 and 1", s)
		}
	}
	return a, nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	rootID := fs.Int64("root", -1, "root id to evaluate (default: first root)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) < 2 {
		return fmt.Errorf("eval takes an artifact file and at least one assignment string")
	}
	fn, err := loadFunc(rest[0])
	if err != nil {
		return err
	}
	root, err := rootFlag(fn, *rootID)
	if err != nil {
		return err
	}
	assignments := make([][]bool, len(rest)-1)
	for i, s := range rest[1:] {
		if assignments[i], err = parseAssignment(s, fn.NumVars()); err != nil {
			return err
		}
	}
	for i, v := range fn.EvalBatch(root, assignments) {
		val := 0
		if v {
			val = 1
		}
		fmt.Printf("%s -> %d\n", rest[1+i], val)
	}
	return nil
}

func runSatCount(args []string) error {
	fs := flag.NewFlagSet("satcount", flag.ExitOnError)
	rootID := fs.Int64("root", -1, "root id to count (default: first root)")
	fs.Parse(args)
	if len(fs.Args()) != 1 {
		return fmt.Errorf("satcount takes exactly one artifact file")
	}
	fn, err := loadFunc(fs.Args()[0])
	if err != nil {
		return err
	}
	root, err := rootFlag(fn, *rootID)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", fn.SatCount(root).String())
	return nil
}

func runAnySat(args []string) error {
	fs := flag.NewFlagSet("anysat", flag.ExitOnError)
	rootID := fs.Int64("root", -1, "root id to satisfy (default: first root)")
	fs.Parse(args)
	if len(fs.Args()) != 1 {
		return fmt.Errorf("anysat takes exactly one artifact file")
	}
	fn, err := loadFunc(fs.Args()[0])
	if err != nil {
		return err
	}
	root, err := rootFlag(fn, *rootID)
	if err != nil {
		return err
	}
	asn, ok := fn.AnySat(root)
	if !ok {
		return fmt.Errorf("unsatisfiable")
	}
	// Unconstrained variables print as '-': any value satisfies.
	buf := make([]byte, fn.NumVars())
	for i := range buf {
		buf[i] = '-'
	}
	for v, val := range asn {
		if val {
			buf[v] = '1'
		} else {
			buf[v] = '0'
		}
	}
	fmt.Printf("%s\n", buf)
	return nil
}
