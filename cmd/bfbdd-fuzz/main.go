// Command bfbdd-fuzz drives the cross-engine differential oracle
// (internal/oracle): it generates seeded random operation sequences,
// executes each against every construction engine plus a truth-table
// evaluator, and cross-checks canonical structure, evaluation, model
// counts, and metamorphic Boolean identities. On a divergence it writes
// a replay file, delta-debugs the sequence to a minimal reproducer, and
// prints a ready-to-paste regression test.
//
// Usage:
//
//	bfbdd-fuzz [flags]                 fuzz mode
//	bfbdd-fuzz -replay FILE            verify a recorded replay file
//
//	-seqs N          sequences to run (default 1000)
//	-vars N          variables per sequence, 1..14 (default 10)
//	-ops N           operations per sequence (default 60)
//	-seed N          base seed; sequence i uses splitmix64(seed+i)
//	-par N           worker goroutines (default GOMAXPROCS)
//	-engines LIST    comma-separated engine subset, or "all"
//	-out DIR         directory for replay files (default ".")
//	-shrink          shrink failures before reporting (default true)
//	-shrink-budget N max re-executions while shrinking (default 400)
//	-max-failures N  stop after N divergences (default 1)
//	-v               progress output
//
// Exit status: 0 when every sequence passes (or a -replay verifies),
// 1 when a divergence is found (or a replay fails to verify), 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bfbdd/internal/oracle"
)

func main() {
	var (
		seqs         = flag.Int("seqs", 1000, "sequences to run")
		vars         = flag.Int("vars", 10, "variables per sequence (1..14)")
		ops          = flag.Int("ops", 60, "operations per sequence")
		seed         = flag.Int64("seed", 1, "base seed")
		par          = flag.Int("par", runtime.GOMAXPROCS(0), "worker goroutines")
		engineList   = flag.String("engines", "all", "comma-separated engines, or all")
		outDir       = flag.String("out", ".", "directory for replay files")
		doShrink     = flag.Bool("shrink", true, "shrink failures before reporting")
		shrinkBudget = flag.Int("shrink-budget", 400, "max re-executions while shrinking")
		maxFailures  = flag.Int("max-failures", 1, "stop after this many divergences")
		replayPath   = flag.String("replay", "", "verify a replay file and exit")
		verbose      = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	engines, err := oracle.ParseEngines(*engineList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfbdd-fuzz:", err)
		os.Exit(2)
	}
	if *replayPath != "" {
		os.Exit(verifyReplay(*replayPath, engines))
	}
	if *vars < 1 || *vars > oracle.MaxVars {
		fmt.Fprintf(os.Stderr, "bfbdd-fuzz: -vars must be 1..%d\n", oracle.MaxVars)
		os.Exit(2)
	}
	if *seqs < 1 || *ops < 1 || *par < 1 || *maxFailures < 1 {
		fmt.Fprintln(os.Stderr, "bfbdd-fuzz: -seqs, -ops, -par, -max-failures must be positive")
		os.Exit(2)
	}

	start := time.Now()
	var (
		done     atomic.Int64
		failures atomic.Int64
		mu       sync.Mutex // serializes failure reporting
		wg       sync.WaitGroup
	)
	jobs := make(chan int)
	for w := 0; w < *par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cfg := oracle.Config{Seed: splitmix64(*seed, i), Vars: *vars, Ops: *ops}
				rep := oracle.Run(oracle.Generate(cfg), engines)
				n := done.Add(1)
				if *verbose && n%500 == 0 {
					fmt.Fprintf(os.Stderr, "bfbdd-fuzz: %d/%d sequences, %d failures, %s\n",
						n, *seqs, failures.Load(), time.Since(start).Round(time.Millisecond))
				}
				if rep.Div == nil {
					continue
				}
				failures.Add(1)
				mu.Lock()
				reportFailure(cfg, rep, engines, *outDir, *doShrink, *shrinkBudget)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *seqs && failures.Load() < int64(*maxFailures); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if n := failures.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "bfbdd-fuzz: %d/%d sequences diverged in %s\n",
			n, done.Load(), time.Since(start).Round(time.Millisecond))
		os.Exit(1)
	}
	fmt.Printf("bfbdd-fuzz: %d sequences (%d vars, %d ops, %d engines) passed in %s\n",
		done.Load(), *vars, *ops, len(engines), time.Since(start).Round(time.Millisecond))
}

// splitmix64 spreads the base seed across sequence indices so nearby
// indices get unrelated generator streams.
func splitmix64(base int64, i int) int64 {
	x := uint64(base) + uint64(i)*0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x &^ (1 << 63)) // keep seeds non-negative for readability
}

// reportFailure shrinks a diverging sequence, writes its replay file,
// and prints the regression test.
func reportFailure(cfg oracle.Config, rep oracle.Report, engines []oracle.EngineSpec,
	outDir string, doShrink bool, budget int) {
	fmt.Fprintf(os.Stderr, "\nbfbdd-fuzz: seed %d: %s\n", cfg.Seed, rep.Verdict())
	rp := oracle.NewReplay(cfg, rep)
	if doShrink {
		fails := func(s oracle.Sequence) bool { return oracle.Run(s, engines).Div != nil }
		shrunk := oracle.Shrink(rep.Seq, fails, budget)
		rp.AttachShrunk(shrunk, oracle.Run(shrunk, engines).Verdict())
		fmt.Fprintf(os.Stderr, "bfbdd-fuzz: shrunk %d ops/%d vars -> %d ops/%d vars\n",
			len(rep.Seq.Ops), rep.Seq.Vars, len(shrunk.Ops), shrunk.Vars)
		fmt.Fprintf(os.Stderr, "bfbdd-fuzz: minimal trace:\n%s\n", shrunk)
		fmt.Fprintf(os.Stderr, "bfbdd-fuzz: regression test:\n%s", rp.RegressionTest)
	}
	path := filepath.Join(outDir, fmt.Sprintf("replay-%d.json", cfg.Seed))
	if err := oracle.WriteReplay(path, rp); err != nil {
		fmt.Fprintln(os.Stderr, "bfbdd-fuzz: writing replay:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "bfbdd-fuzz: replay written to %s (rerun: bfbdd-fuzz -replay %s)\n", path, path)
}

// verifyReplay re-executes a recorded replay and reports whether the
// trace and verdict reproduce exactly.
func verifyReplay(path string, engines []oracle.EngineSpec) int {
	rp, err := oracle.ReadReplay(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bfbdd-fuzz:", err)
		return 2
	}
	if err := rp.Verify(engines); err != nil {
		fmt.Fprintln(os.Stderr, "bfbdd-fuzz: replay does NOT reproduce:", err)
		return 1
	}
	fmt.Printf("bfbdd-fuzz: replay %s reproduces exactly (seed %d, %d ops, verdict %q)\n",
		path, rp.Seed, rp.Ops, rp.Verdict)
	return 0
}
