// Command bfbdd-circuit symbolically evaluates a combinational circuit,
// building one BDD per primary output, and reports sizes and statistics.
// It accepts either a built-in generated circuit (-circuit, see
// internal/harness for names) or an ISCAS85 .bench netlist file (-bench).
//
// Usage:
//
//	bfbdd-circuit -circuit mult-11 [flags]
//	bfbdd-circuit -bench path/to/c432.bench [flags]
//
//	-engine NAME    df, bf, hybrid, pbf (default), par
//	-workers N      worker count for -engine par
//	-order METHOD   dfs (default), identity, interleave, reverse, shuffle
//	-threshold N    evaluation threshold
//	-sat            report satisfying-assignment counts per output
//	-dot FILE       write the output BDDs as Graphviz DOT
//	-write FILE     re-emit the circuit in .bench format
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bfbdd/internal/core"
	"bfbdd/internal/harness"
	"bfbdd/internal/netlist"
	"bfbdd/internal/node"
	"bfbdd/internal/order"
	"bfbdd/internal/stats"
)

func main() {
	var (
		circuitName = flag.String("circuit", "", "built-in circuit name (e.g. mult-11, c2670)")
		benchFile   = flag.String("bench", "", "ISCAS85 .bench netlist file")
		engineName  = flag.String("engine", "pbf", "df, bf, hybrid, pbf, par")
		workers     = flag.Int("workers", 4, "workers for -engine par")
		orderFlag   = flag.String("order", "dfs", "variable order method")
		threshold   = flag.Int("threshold", 0, "evaluation threshold (0 = default)")
		doSat       = flag.Bool("sat", false, "report per-output satisfying assignment counts")
		dotFile     = flag.String("dot", "", "write output BDDs as DOT")
		writeFile   = flag.String("write", "", "re-emit circuit in .bench format")
	)
	flag.Parse()

	circ, err := loadCircuit(*circuitName, *benchFile)
	if err != nil {
		fatal(err)
	}
	if *writeFile != "" {
		f, err := os.Create(*writeFile)
		if err != nil {
			fatal(err)
		}
		if err := netlist.Write(f, circ); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *writeFile)
	}

	var m order.Method
	switch *orderFlag {
	case "dfs":
		m = order.DFS
	case "identity":
		m = order.Identity
	case "interleave":
		m = order.Interleave
	case "reverse":
		m = order.Reverse
	case "shuffle":
		m = order.Shuffle
	default:
		fatal(fmt.Errorf("unknown -order %q", *orderFlag))
	}

	opts := core.Options{
		Levels:        circ.NumInputs(),
		EvalThreshold: *threshold,
	}
	switch *engineName {
	case "df":
		opts.Engine = core.EngineDF
	case "bf":
		opts.Engine = core.EngineBF
	case "hybrid":
		opts.Engine = core.EngineHybrid
	case "pbf":
		opts.Engine = core.EnginePBF
	case "par":
		opts.Engine = core.EnginePar
		opts.Workers = *workers
		opts.Stealing = true
	default:
		fatal(fmt.Errorf("unknown -engine %q", *engineName))
	}

	fmt.Printf("circuit %s: %d inputs, %d outputs, %d gates, depth %d\n",
		circ.Name, circ.NumInputs(), circ.NumOutputs(), circ.NumGates(), circ.Depth())

	k := core.NewKernel(opts)
	levels := order.Compute(circ, m, 0)
	start := time.Now()
	res, err := netlist.Build(k, circ, levels)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	refs := res.Refs()
	fmt.Printf("built %d output BDDs in %v with engine %s\n",
		len(refs), elapsed.Round(time.Millisecond), opts.Engine)
	fmt.Printf("total output nodes: %d (shared); live nodes: %d\n",
		k.SizeMulti(refs), k.NumNodes())

	for i, r := range refs {
		gate := circ.Gates[circ.Outputs[i]]
		name := gate.Name
		if name == "" {
			name = fmt.Sprintf("out%d", i)
		}
		line := fmt.Sprintf("  %-12s %8d nodes", name, k.Size(r))
		if *doSat {
			line += fmt.Sprintf("  satcount=%v", k.SatCount(r))
		}
		switch {
		case r == node.Zero:
			line += "  (constant 0)"
		case r == node.One:
			line += "  (constant 1)"
		}
		fmt.Println(line)
	}

	st := k.TotalStats()
	fmt.Printf("stats: %d ops (%.2fM), %d cache hits, %d terminal cases\n",
		st.Ops, float64(st.Ops)/1e6, st.CacheHits, st.Terminals)
	fmt.Printf("phases: expansion %v, reduction %v, gc mark/fix/rehash %v/%v/%v\n",
		st.PhaseTime(stats.PhaseExpansion).Round(time.Millisecond),
		st.PhaseTime(stats.PhaseReduction).Round(time.Millisecond),
		st.PhaseTime(stats.PhaseGCMark).Round(time.Millisecond),
		st.PhaseTime(stats.PhaseGCFix).Round(time.Millisecond),
		st.PhaseTime(stats.PhaseGCRehash).Round(time.Millisecond))
	fmt.Printf("memory: peak %.1f MB, %d garbage collections\n",
		float64(k.Memory().PeakBytes)/(1<<20), k.Memory().GCCount)
	if opts.Engine == core.EnginePar {
		fmt.Printf("parallel: %d context pushes, %d steals (%d ops), %d stalls\n",
			st.ContextPushes, st.Steals, st.StolenOps, st.Stalls)
	}

	if *dotFile != "" {
		if err := writeDOT(*dotFile, k, circ, refs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotFile)
	}
	res.Release()
}

func loadCircuit(name, benchFile string) (*netlist.Circuit, error) {
	switch {
	case name != "" && benchFile != "":
		return nil, fmt.Errorf("use either -circuit or -bench, not both")
	case name != "":
		return harness.MakeCircuit(name)
	case benchFile != "":
		f, err := os.Open(benchFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.Parse(benchFile, f)
	default:
		return nil, fmt.Errorf("one of -circuit or -bench is required")
	}
}

// writeDOT emits the output BDDs with a minimal local renderer (the
// public package's WriteDOT works on public handles; here we have raw
// kernel refs).
func writeDOT(path string, k *core.Kernel, circ *netlist.Circuit, refs []node.Ref) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "digraph bdd {")
	fmt.Fprintln(f, `  t0 [label="0", shape=box]; t1 [label="1", shape=box];`)
	id := func(r node.Ref) string {
		switch {
		case r.IsZero():
			return "t0"
		case r.IsOne():
			return "t1"
		default:
			return fmt.Sprintf("n%d_%d_%d", r.Level(), r.Worker(), r.Index())
		}
	}
	seen := map[node.Ref]bool{}
	var emit func(r node.Ref)
	emit = func(r node.Ref) {
		if r.IsTerminal() || seen[r] {
			return
		}
		seen[r] = true
		nd := k.Store().Node(r)
		fmt.Fprintf(f, "  %s [label=\"x%d\"];\n", id(r), r.Level())
		fmt.Fprintf(f, "  %s -> %s [style=dashed];\n", id(r), id(nd.Low))
		fmt.Fprintf(f, "  %s -> %s;\n", id(r), id(nd.High))
		emit(nd.Low)
		emit(nd.High)
	}
	for i, r := range refs {
		gate := circ.Gates[circ.Outputs[i]]
		label := gate.Name
		if label == "" {
			label = fmt.Sprintf("out%d", i)
		}
		fmt.Fprintf(f, "  r%d [label=%q, shape=plaintext];\n  r%d -> %s;\n", i, label, i, id(r))
		emit(r)
	}
	fmt.Fprintln(f, "}")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfbdd-circuit:", err)
	os.Exit(1)
}
