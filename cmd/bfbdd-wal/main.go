// Command bfbdd-wal is the offline toolkit for bfbdd write-ahead-log
// directories — the wal/ subtree the server journals every mutating
// operation into before acknowledging it.
//
//	bfbdd-wal info   dir [sid]      per-session segment chain: bases,
//	                                record counts, last sequences, torn
//	                                tails — without building a single node
//	bfbdd-wal verify dir [sid]      full structural scan; one-line JSON
//	                                verdict on stdout, nonzero exit on any
//	                                corruption the recovery path would not
//	                                tolerate (a torn tail on the NEWEST
//	                                segment is the expected shape of a
//	                                crash and passes; a torn tail mid-chain
//	                                or an unreachable segment fails)
//	bfbdd-wal replay dir sid        deterministic replay from the creation
//	                                record into a fresh manager; prints the
//	                                rebuilt handle table with the same
//	                                per-handle signatures the server's
//	                                "signature" query reports
//	bfbdd-wal export dir sid        translate the session's history into an
//	                                internal/oracle operation sequence
//	                                (JSON on stdout) for cross-engine
//	                                differential replay
//
// dir is the wal/ directory itself, or a checkpoint directory containing
// one (the tool looks for dir/wal when dir holds no segments).
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"bfbdd"
	"bfbdd/internal/core"
	"bfbdd/internal/node"
	"bfbdd/internal/oracle"
	"bfbdd/internal/wal"
	"bfbdd/internal/walreplay"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := args[0]; cmd {
	case "info":
		err = runInfo(args[1:])
	case "verify":
		err = runVerify(args[1:])
	case "replay":
		err = runReplay(args[1:])
	case "export":
		err = runExport(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "bfbdd-wal: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfbdd-wal: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  bfbdd-wal info   dir [session-id]   segment chains, record counts, torn tails
  bfbdd-wal verify dir [session-id]   one-line JSON verdict; nonzero exit on corruption
  bfbdd-wal replay dir session-id     rebuild the session, print the handle table
  bfbdd-wal export dir session-id     oracle operation sequence (JSON) on stdout
`)
}

// walDir resolves the segment directory: the given path if it holds
// segments (or is named wal), otherwise its wal/ child — so both the
// server's -checkpoint-dir and the wal/ subtree itself are accepted.
func walDir(dir string) (string, error) {
	ids, err := wal.SessionIDs(dir)
	if err == nil && len(ids) > 0 {
		return dir, nil
	}
	sub := wal.Dir(dir)
	if st, err := os.Stat(sub); err == nil && st.IsDir() {
		return sub, nil
	}
	if filepath.Base(dir) == "wal" {
		return dir, nil
	}
	return dir, nil
}

// dirAndIDs resolves the directory and the session set to operate on.
func dirAndIDs(args []string, cmd string) (string, []string, error) {
	if len(args) < 1 || len(args) > 2 {
		return "", nil, fmt.Errorf("%s takes a directory and an optional session id", cmd)
	}
	dir, err := walDir(args[0])
	if err != nil {
		return "", nil, err
	}
	if len(args) == 2 {
		return dir, []string{args[1]}, nil
	}
	ids, err := wal.SessionIDs(dir)
	if err != nil {
		return "", nil, err
	}
	if len(ids) == 0 {
		return "", nil, fmt.Errorf("no WAL segments under %s", dir)
	}
	sort.Strings(ids)
	return dir, ids, nil
}

func runInfo(args []string) error {
	dir, ids, err := dirAndIDs(args, "info")
	if err != nil {
		return err
	}
	for _, id := range ids {
		segs, err := wal.ListSegments(dir, id)
		if err != nil {
			return err
		}
		fmt.Printf("session %s (%d segments)\n", id, len(segs))
		fmt.Printf("  %20s %10s %20s %6s %s\n", "base", "records", "last-seq", "epoch", "state")
		for _, sg := range segs {
			kinds := make(map[wal.Kind]int)
			st, err := wal.ScanSegmentFile(sg.Path, func(e wal.Entry) error {
				kinds[e.Rec.Kind()]++
				return nil
			})
			if err != nil {
				fmt.Printf("  %20d %10s %20s %6s unreadable: %v\n", sg.Base, "-", "-", "-", err)
				continue
			}
			state := "clean"
			if st.Torn {
				state = fmt.Sprintf("torn tail (%v)", st.TornErr)
			}
			fmt.Printf("  %20d %10d %20d %6d %s\n", st.Base, st.Records, st.LastSeq, st.Epoch, state)
			if len(kinds) > 0 {
				var ks []wal.Kind
				for k := range kinds {
					ks = append(ks, k)
				}
				sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
				fmt.Printf("    ")
				for i, k := range ks {
					if i > 0 {
						fmt.Printf(", ")
					}
					fmt.Printf("%s=%d", k, kinds[k])
				}
				fmt.Printf("\n")
			}
		}
	}
	return nil
}

// verdict is the one-line machine-readable verify result.
type verdict struct {
	OK        bool     `json:"ok"`
	Dir       string   `json:"dir"`
	Sessions  int      `json:"sessions"`
	Segments  int      `json:"segments"`
	Records   uint64   `json:"records"`
	TornTails int      `json:"torn_tails,omitempty"`
	MaxEpoch  uint64   `json:"max_epoch,omitempty"`
	Errors    []string `json:"errors,omitempty"`
}

// verifySession delegates to the chain verifier shared with recovery and
// replication: dense sequences across segment boundaries, header bases
// matching file names, no epoch regression, and a torn tail tolerated
// only on the newest segment (the expected shape of a crash) — torn
// mid-chain segments and unreachable segments are corruption, recovery
// would lose acknowledged history after them.
func verifySession(dir, id string, v *verdict) {
	cs, err := wal.VerifyChain(dir, id)
	v.Segments += cs.Segments
	v.Records += cs.Records
	if cs.TornTail {
		v.TornTails++
	}
	if cs.MaxEpoch > v.MaxEpoch {
		v.MaxEpoch = cs.MaxEpoch
	}
	if err != nil {
		v.Errors = append(v.Errors, fmt.Sprintf("%s: %v", id, err))
		return
	}
	if cs.Segments == 0 {
		v.Errors = append(v.Errors, fmt.Sprintf("%s: no segments", id))
	}
}

func runVerify(args []string) error {
	dir, ids, err := dirAndIDs(args, "verify")
	if err != nil {
		return err
	}
	v := verdict{Dir: dir, Sessions: len(ids)}
	for _, id := range ids {
		verifySession(dir, id, &v)
	}
	v.OK = len(v.Errors) == 0
	out, _ := json.Marshal(v)
	fmt.Println(string(out))
	if !v.OK {
		os.Exit(1)
	}
	return nil
}

// createOptions digs the session's creation record (sequence 1 of the
// chain) out of the log. Replay and export need the variable count; a log
// whose oldest segment starts above zero has been truncated by a
// checkpoint and no longer describes the full history.
func createOptions(dir, id string) (vars int, err error) {
	type sessionOptions struct {
		Vars int `json:"vars"`
	}
	found := false
	stop := fmt.Errorf("stop")
	_, serr := wal.ReplayTail(dir, id, 0, func(e wal.Entry) error {
		if e.Seq != 1 {
			return stop
		}
		cr, ok := e.Rec.(wal.CreateRec)
		if !ok {
			return fmt.Errorf("sequence 1 is %v, not the creation record — log truncated?", e.Rec.Kind())
		}
		var o sessionOptions
		if err := json.Unmarshal(cr.Options, &o); err != nil {
			return fmt.Errorf("creation record: %w", err)
		}
		vars, found = o.Vars, true
		return stop
	})
	if serr != nil && serr != stop {
		return 0, serr
	}
	if !found {
		return 0, fmt.Errorf("no creation record at sequence 1: the log has been truncated below a checkpoint (full replay needs the complete history; use the server's snapshot+tail recovery instead)")
	}
	return vars, nil
}

// signature is the server's "signature" query: the kernel's canonical
// signature hashed to one hex word. Matching the wire format lets the
// crash-recovery harness compare a live server's answers against an
// offline replay.
func signature(m *bfbdd.Manager, b *bfbdd.BDD) string {
	sig := m.Kernel().CanonicalSignature([]node.Ref{b.Ref()})
	h := fnv.New64a()
	var word [8]byte
	for _, v := range sig {
		binary.LittleEndian.PutUint64(word[:], v)
		_, _ = h.Write(word[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func runReplay(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("replay takes a directory and a session id")
	}
	dir, err := walDir(args[0])
	if err != nil {
		return err
	}
	id := args[1]
	vars, err := createOptions(dir, id)
	if err != nil {
		return err
	}
	m := bfbdd.New(vars)
	defer m.Close()
	st := walreplay.NewState(m)
	stats, err := wal.ReplayTail(dir, id, 0, func(e wal.Entry) error {
		return st.Apply(e.Rec)
	})
	if err != nil {
		return err
	}
	if stats.Gap {
		return fmt.Errorf("unreachable records: segment chain breaks before base %d", stats.GapBase)
	}
	fmt.Printf("session:   %s\n", id)
	fmt.Printf("vars:      %d\n", vars)
	fmt.Printf("replayed:  %d records over %d segments (last seq %d)\n",
		stats.Replayed, stats.Segments, stats.LastSeq)
	if stats.TornTails > 0 {
		fmt.Printf("torn:      %d tail(s) discarded\n", stats.TornTails)
	}
	if st.Closed {
		fmt.Printf("closed:    the history ends with a close record\n")
	}
	fmt.Printf("handles:   %d live, next handle %d\n", len(st.Handles), st.NextHandle+1)
	hs := make([]uint64, 0, len(st.Handles))
	for h := range st.Handles {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	for _, h := range hs {
		b := st.Handles[h]
		fmt.Printf("  handle %-8d size %-10d signature %s\n", h, b.Size(), signature(m, b))
	}
	return nil
}

// runExport translates a session's WAL history into an internal/oracle
// operation sequence: the cross-engine differential harness can then
// replay a production workload against every engine with truth-table
// ground truth. Slot layout follows the oracle's fixed prefix — slot 0 is
// the constant zero, slot 1 one, slot 2+v variable v — and every
// producing record appends exactly one slot, so handles map onto slots as
// the export walks the log. Composite operations the oracle grammar lacks
// are expanded: ITE(f,g,h) = (f∧g)∨(¬f∧h), Compose(f,v,g) =
// ITE(g, f|v=1, f|v=0). Frees and audit records carry no function
// content and are skipped; quantifications need the variable count to
// fit the oracle's 32-bit mask.
func runExport(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("export takes a directory and a session id")
	}
	dir, err := walDir(args[0])
	if err != nil {
		return err
	}
	id := args[1]
	vars, err := createOptions(dir, id)
	if err != nil {
		return err
	}

	seq := oracle.Sequence{Vars: vars}
	slots := 2 + vars // oracle base slots: zero, one, one per variable
	slotOf := make(map[uint64]int)
	get := func(h uint64) (int, error) {
		s, ok := slotOf[h]
		if !ok {
			return 0, fmt.Errorf("no slot for handle %d", h)
		}
		return s, nil
	}
	push := func(r oracle.OpRec) int {
		seq.Ops = append(seq.Ops, r)
		slots++
		return slots - 1
	}
	apply := func(op core.Op, a, b int) int {
		return push(oracle.OpRec{Kind: oracle.KApply, Op: op, A: a, B: b})
	}
	not := func(a int) int {
		return push(oracle.OpRec{Kind: oracle.KNot, A: a})
	}
	restrict := func(a, v int, val bool) int {
		return push(oracle.OpRec{Kind: oracle.KRestrict, A: a, Var: v, Val: val})
	}
	// ite emits ITE(f,g,h) as (f∧g)∨(¬f∧h): four records.
	ite := func(f, g, h int) int {
		t1 := apply(core.OpAnd, f, g)
		nf := not(f)
		t2 := apply(core.OpAnd, nf, h)
		return apply(core.OpOr, t1, t2)
	}
	mask := func(quantVars []int) (uint32, error) {
		var m uint32
		for _, v := range quantVars {
			if v < 0 || v >= 32 || v >= vars {
				return 0, fmt.Errorf("variable %d does not fit the oracle's 32-bit quantifier mask", v)
			}
			m |= 1 << uint(v)
		}
		return m, nil
	}

	var skipped int
	stats, err := wal.ReplayTail(dir, id, 0, func(e wal.Entry) error {
		switch r := e.Rec.(type) {
		case wal.CreateRec, wal.SnapshotRec, wal.PublishRec, wal.CloseRec:
			return nil
		case wal.VarRec:
			if r.Index < 0 || r.Index >= vars {
				return fmt.Errorf("seq %d: variable %d out of range", e.Seq, r.Index)
			}
			if r.Negated {
				slotOf[r.Handle] = not(2 + r.Index)
			} else {
				slotOf[r.Handle] = 2 + r.Index
			}
			return nil
		case wal.ConstRec:
			if r.Value {
				slotOf[r.Handle] = 1
			} else {
				slotOf[r.Handle] = 0
			}
			return nil
		case wal.ApplyRec:
			return exportApply(r, get, apply, slotOf)
		case wal.BatchRec:
			for _, op := range r.Ops {
				if err := exportApply(op, get, apply, slotOf); err != nil {
					return fmt.Errorf("seq %d: %w", e.Seq, err)
				}
			}
			return nil
		case wal.ITERec:
			f, err := get(r.F)
			if err != nil {
				return err
			}
			g, err := get(r.G)
			if err != nil {
				return err
			}
			h, err := get(r.H)
			if err != nil {
				return err
			}
			slotOf[r.Handle] = ite(f, g, h)
			return nil
		case wal.NotRec:
			f, err := get(r.F)
			if err != nil {
				return err
			}
			slotOf[r.Handle] = not(f)
			return nil
		case wal.QuantifyRec:
			f, err := get(r.F)
			if err != nil {
				return err
			}
			m, err := mask(r.Vars)
			if err != nil {
				return fmt.Errorf("seq %d: %w", e.Seq, err)
			}
			kind := oracle.KExists
			if r.Forall {
				kind = oracle.KForall
			}
			slotOf[r.Handle] = push(oracle.OpRec{Kind: kind, A: f, VarsMask: m})
			return nil
		case wal.RestrictRec:
			f, err := get(r.F)
			if err != nil {
				return err
			}
			if r.Var < 0 || r.Var >= vars {
				return fmt.Errorf("seq %d: variable %d out of range", e.Seq, r.Var)
			}
			slotOf[r.Handle] = restrict(f, r.Var, r.Value)
			return nil
		case wal.ComposeRec:
			f, err := get(r.F)
			if err != nil {
				return err
			}
			g, err := get(r.G)
			if err != nil {
				return err
			}
			if r.Var < 0 || r.Var >= vars {
				return fmt.Errorf("seq %d: variable %d out of range", e.Seq, r.Var)
			}
			hi := restrict(f, r.Var, true)
			lo := restrict(f, r.Var, false)
			slotOf[r.Handle] = ite(g, hi, lo)
			return nil
		case wal.FreeRec:
			for _, h := range r.Handles {
				delete(slotOf, h)
			}
			return nil
		case wal.GCRec:
			seq.Ops = append(seq.Ops, oracle.OpRec{Kind: oracle.KGC})
			return nil
		case wal.SetOrderRec:
			// The oracle grammar only has seeded random reorders; a reorder
			// does not change any function, so the export stays faithful.
			skipped++
			return nil
		}
		skipped++
		return nil
	})
	if err != nil {
		return err
	}
	if stats.Gap {
		return fmt.Errorf("unreachable records: segment chain breaks before base %d", stats.GapBase)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "bfbdd-wal: export: %d record(s) without an oracle equivalent skipped\n", skipped)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(seq)
}

// exportApply maps one journaled binary apply onto an oracle KApply.
func exportApply(r wal.ApplyRec,
	get func(uint64) (int, error),
	apply func(core.Op, int, int) int,
	slotOf map[uint64]int) error {
	if r.Op >= wal.NumOps {
		return fmt.Errorf("op code %d out of range", r.Op)
	}
	f, err := get(r.F)
	if err != nil {
		return err
	}
	g, err := get(r.G)
	if err != nil {
		return err
	}
	slotOf[r.Handle] = apply(core.Op(r.Op), f, g)
	return nil
}
