// Command bfbdd-serve runs the bfbdd HTTP/JSON service: a pool of
// session-scoped BDD managers behind a REST-ish API, with request
// coalescing onto the parallel engine's batch path, admission control,
// idle-session expiry, and a Prometheus /metrics endpoint.
//
// Typical use:
//
//	bfbdd-serve -addr :8707 -request-timeout 30s -pprof
//
// With -checkpoint-dir set, every live session is periodically
// serialized there, every mutating operation is journaled to a
// write-ahead log before it is acknowledged, and the next start recovers
// each session — same session ids, same handles — as newest checkpoint
// plus replayed WAL tail. Under -wal-sync=always an acknowledged
// operation survives any crash; under the default -wal-sync=interval a
// process crash (kill -9) still loses nothing and a power failure loses
// at most one sync interval.
//
// Resource governance: -session-max-nodes / -session-max-bytes cap every
// session's engine budget (builds degrade, then abort with 413 instead of
// OOMing the process), and -max-total-bytes sheds allocating requests
// with 429 + Retry-After while the whole pool is over budget.
//
// Memory tiering: with a spill directory (-spill-dir, defaulting to
// <checkpoint-dir>/spill when persistence is on) quiescent sessions can
// park their node levels in spill files and run larger-than-RAM pools.
// -session-idle-spill tiers idle sessions down automatically, and
// -max-resident-bytes spills the coldest sessions instead of shedding
// when the heap-resident pool exceeds the cap; spilled sessions fault
// their levels back in transparently on the next operation.
//
// Hot standby: -follow=<primary-url> (requires -checkpoint-dir) runs the
// process as a read-only replica — sessions bootstrap from the primary's
// snapshots, stay current by streaming its WAL, serve every read path,
// and answer mutations with 421 plus the primary's URL. /readyz reports
// ready once bootstrap is complete and replication lag is within
// -ready-max-lag. POST /v1/admin/promote (or restarting with
// -promote-on-start) seals replication, bumps the fencing epoch, and
// flips the replica writable; a fenced old primary refuses stale-epoch
// appends on restart.
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops accepting,
// in-flight requests and queued session work finish (bounded by
// -drain-timeout), a final checkpoint pass runs, then every session's
// manager is closed. A second SIGINT/SIGTERM abandons the drain and
// forces an immediate exit (checkpoints already committed stay intact —
// the next start recovers from them).
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bfbdd/internal/server"
)

func main() {
	var (
		addr            = flag.String("addr", ":8707", "listen address")
		maxSessions     = flag.Int("max-sessions", 64, "maximum concurrently open sessions")
		maxInflight     = flag.Int("max-inflight", 256, "maximum concurrently served requests (excess get 429)")
		requestTimeout  = flag.Duration("request-timeout", 30*time.Second, "per-request deadline, plumbed into cancellable builds")
		idleExpiry      = flag.Duration("idle-expiry", 10*time.Minute, "close sessions idle for this long")
		coalesceWindow  = flag.Duration("coalesce-window", 2*time.Millisecond, "window for gathering concurrent applies into one engine batch")
		coalesceBatch   = flag.Int("coalesce-max-batch", 64, "flush a forming batch early at this many ops")
		queuePerSession = flag.Int("max-queued-per-session", 128, "per-session executor queue bound")
		checkpointDir   = flag.String("checkpoint-dir", "", "directory for session checkpoints; empty disables persistence")
		checkpointEvery = flag.Duration("checkpoint-interval", time.Minute, "periodic checkpoint cadence (0 disables the loop; shutdown still checkpoints)")
		walSync         = flag.String("wal-sync", "interval", "write-ahead-log durability: always (fsync per op), interval (fsync on a timer), none")
		walSyncEvery    = flag.Duration("wal-sync-interval", 100*time.Millisecond, "fsync cadence under -wal-sync=interval")
		maxTotalBytes   = flag.Int64("max-total-bytes", 0, "server-wide memory budget; allocating requests are shed with 429 while the pool is over it (0 = unlimited)")
		spillDir        = flag.String("spill-dir", "", "directory for per-session level spill files; empty defaults to <checkpoint-dir>/spill when -checkpoint-dir is set, or disables memory tiering")
		idleSpill       = flag.Duration("session-idle-spill", 0, "tier sessions idle for this long down to their spill files (0 disables; requires a spill dir)")
		maxResident     = flag.Int64("max-resident-bytes", 0, "heap-resident node-store cap; coldest sessions are spilled to disk instead of shedding requests (0 = unlimited; requires a spill dir)")
		sessionMaxNodes = flag.Uint64("session-max-nodes", 0, "per-session live-node budget cap; over-budget builds abort with 413 (0 = unlimited)")
		sessionMaxBytes = flag.Uint64("session-max-bytes", 0, "per-session memory budget cap in bytes (0 = unlimited)")
		maxFuncBytes    = flag.Int64("max-func-bytes", 0, "byte pool for published function artifacts; over-pool publishes get 413 (0 = unlimited)")
		maxEvalBody     = flag.Int64("max-eval-body-bytes", 4<<20, "request-body limit on /v1/funcs/{id}/eval; larger bodies get 413")
		maxEvalBatch    = flag.Int("max-eval-batch", 8192, "assignments accepted per eval request; larger batches get 413")
		pprofEnabled    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain at exit")
		followURL       = flag.String("follow", "", "primary base URL to follow as a read-only hot standby (requires -checkpoint-dir)")
		promoteOnStart  = flag.Bool("promote-on-start", false, "bump the replication epoch and serve writable from the first request (failover restart)")
		readyMaxLag     = flag.Duration("ready-max-lag", 2*time.Second, "replication lag beyond which a follower's /readyz reports unready")
		replRetention   = flag.Uint64("repl-retention", 65536, "records behind the newest checkpoint that WAL truncation holds for lagging followers")
		replSyncTimeout = flag.Duration("repl-sync-timeout", 2*time.Second, "under -wal-sync=always, how long an ack waits for follower delivery before dropping laggards")
		traceSample     = flag.Float64("trace-sample", 0, "fraction of requests to trace end-to-end in [0,1]; 0 disables sampling (?trace=1 still traces a request)")
		traceRing       = flag.Int("trace-ring", 128, "completed traces retained for GET /v1/debug/traces")
		slowBuild       = flag.Duration("slow-build-threshold", 0, "log a per-phase breakdown of any engine build slower than this (0 disables)")
	)
	// -shutdown-timeout is the historical name of -drain-timeout; both set
	// the same value, last one parsed wins.
	flag.DurationVar(drainTimeout, "shutdown-timeout", 30*time.Second, "alias for -drain-timeout")
	flag.Parse()

	if *followURL != "" && *checkpointDir == "" {
		log.Fatal("bfbdd-serve: -follow requires -checkpoint-dir (the replica's durable state lives there)")
	}
	// Memory tiering defaults on alongside persistence: spill files are
	// scratch state living next to the checkpoints unless pointed
	// elsewhere (e.g. faster local disk) with -spill-dir.
	if *spillDir == "" && *checkpointDir != "" {
		*spillDir = *checkpointDir + "/spill"
	}
	if *spillDir == "" && (*idleSpill > 0 || *maxResident > 0) {
		log.Fatal("bfbdd-serve: -session-idle-spill and -max-resident-bytes require a spill dir (-spill-dir or -checkpoint-dir)")
	}

	srv := server.New(server.Config{
		MaxSessions:         *maxSessions,
		MaxInflight:         *maxInflight,
		RequestTimeout:      *requestTimeout,
		SessionIdleExpiry:   *idleExpiry,
		CoalesceWindow:      *coalesceWindow,
		CoalesceMaxBatch:    *coalesceBatch,
		MaxQueuedPerSession: *queuePerSession,
		CheckpointDir:       *checkpointDir,
		CheckpointInterval:  *checkpointEvery,
		WALSync:             *walSync,
		WALSyncInterval:     *walSyncEvery,
		MaxTotalBytes:       *maxTotalBytes,
		SpillDir:            *spillDir,
		SessionIdleSpill:    *idleSpill,
		MaxResidentBytes:    *maxResident,
		SessionMaxNodes:     *sessionMaxNodes,
		SessionMaxBytes:     *sessionMaxBytes,
		MaxFuncBytes:        *maxFuncBytes,
		MaxEvalBodyBytes:    *maxEvalBody,
		MaxEvalBatch:        *maxEvalBatch,
		EnablePprof:         *pprofEnabled,
		FollowURL:           *followURL,
		PromoteOnStart:      *promoteOnStart,
		ReadyMaxLag:         *readyMaxLag,
		ReplRetention:       *replRetention,
		ReplSyncTimeout:     *replSyncTimeout,
		TraceSample:         *traceSample,
		TraceRingSize:       *traceRing,
		SlowBuildThreshold:  *slowBuild,
	})

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("bfbdd-serve: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		log.Printf("bfbdd-serve: %s received, draining (signal again to force exit)", sig)
		// Flip /readyz unready immediately so load balancers stop
		// routing here while the listener finishes in-flight work.
		srv.StartDrain()
	case err := <-errc:
		log.Fatalf("bfbdd-serve: listener failed: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()

	// Drain on a separate goroutine so a second signal can cut it short: a
	// wedged build or full executor queue must not hold the process hostage
	// to the full drain timeout when the operator is mashing Ctrl-C.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		// Stop accepting and drain in-flight HTTP first, then close
		// sessions (draining each session executor's accepted work).
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("bfbdd-serve: http drain: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("bfbdd-serve: session drain: %v", err)
		}
	}()

	select {
	case <-drained:
		log.Printf("bfbdd-serve: shutdown complete")
	case sig := <-sigc:
		log.Printf("bfbdd-serve: second %s received, forcing immediate shutdown", sig)
		cancel()
		httpSrv.Close()
		os.Exit(1)
	}
}
