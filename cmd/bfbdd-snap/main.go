// Command bfbdd-snap is the offline toolkit for bfbdd snapshot streams —
// the files written by Manager.Snapshot, the server's checkpoint
// directory, and POST /v1/sessions/{sid}/snapshot.
//
//	bfbdd-snap info file.snap     header, variable order, per-level node
//	                              histogram, root table — without building
//	                              a single BDD node
//	bfbdd-snap verify file.snap   full restore into a fresh manager; one
//	                              machine-readable verdict line on stdout,
//	                              nonzero exit on any corruption
//	bfbdd-snap repack -o out.snap [-raw] file.snap
//	                              restore + re-snapshot: offline
//	                              compaction (drops nothing live, but
//	                              renumbers densely), optionally switching
//	                              between delta and raw child encoding
//	bfbdd-snap dot file.snap      deterministic Graphviz DOT of the
//	                              stream's roots on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bfbdd"
	"bfbdd/internal/node"
	"bfbdd/internal/snapshot"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := args[0]; cmd {
	case "info":
		err = runInfo(args[1:])
	case "verify":
		err = runVerify(args[1:])
	case "repack":
		err = runRepack(args[1:])
	case "dot":
		err = runDot(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "bfbdd-snap: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bfbdd-snap: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  bfbdd-snap info   file.snap            inspect header and per-level histogram
  bfbdd-snap verify file.snap            full restore; JSON verdict, nonzero exit on corruption
  bfbdd-snap repack -o out.snap [-raw] file.snap
                                         rewrite via restore (offline compaction)
  bfbdd-snap dot    file.snap            deterministic DOT of the roots on stdout
`)
}

func oneFileArg(args []string, cmd string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("%s takes exactly one snapshot file", cmd)
	}
	return args[0], nil
}

// runInfo decodes and checksums the stream without materializing nodes.
func runInfo(args []string) error {
	path, err := oneFileArg(args, "info")
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, _ := f.Stat()

	info, err := snapshot.Inspect(f)
	if err != nil {
		return err
	}
	h := info.Header
	fmt.Printf("file:        %s (%d bytes)\n", path, st.Size())
	fmt.Printf("version:     %d\n", h.Version)
	enc := "raw"
	if h.Flags&snapshot.FlagDeltaRefs != 0 {
		enc = "delta"
	}
	fmt.Printf("child refs:  %s\n", enc)
	fmt.Printf("variables:   %d\n", h.NumVars)
	fmt.Printf("nodes:       %d\n", h.TotalNodes)
	fmt.Printf("roots:       %d\n", h.NumRoots)

	identity := true
	for v, l := range info.Var2Level {
		if v != l {
			identity = false
			break
		}
	}
	if identity {
		fmt.Printf("order:       identity\n")
	} else {
		fmt.Printf("order:       %v (var -> level)\n", info.Var2Level)
	}

	fmt.Printf("levels (stream order, deepest first):\n")
	fmt.Printf("  %8s %12s %12s %8s\n", "level", "nodes", "bytes", "b/node")
	var residentEst uint64
	for _, li := range info.Levels {
		fmt.Printf("  %8d %12d %12d %8.2f\n",
			li.Level, li.Count, li.Bytes, float64(li.Bytes)/float64(li.Count))
		// Arena blocks are the spill/resident granule: a restored level
		// occupies whole blocks of BlockSize nodes.
		blocks := (li.Count + node.BlockSize - 1) / node.BlockSize
		residentEst += uint64(blocks) * node.BlockSize * node.NodeBytes
	}
	fmt.Printf("estimated memory (restored, fully resident):\n")
	fmt.Printf("  node store:  %d bytes (%d-node arena blocks, %d b/node)\n",
		residentEst, node.BlockSize, node.NodeBytes)
	fmt.Printf("  spillable:   %d bytes across %d levels (resident floor ~0 when fully tiered)\n",
		residentEst, len(info.Levels))
	if len(info.Roots) > 0 {
		fmt.Printf("root table:\n")
		for _, rt := range info.Roots {
			switch {
			case rt.Ref.IsZero():
				fmt.Printf("  id %-8d -> constant 0\n", rt.ID)
			case rt.Ref.IsOne():
				fmt.Printf("  id %-8d -> constant 1\n", rt.ID)
			default:
				fmt.Printf("  id %-8d -> node at level %d\n", rt.ID, rt.Ref.Level())
			}
		}
	}
	return nil
}

// restoreFile restores a snapshot file into a fresh manager.
func restoreFile(path string) (*bfbdd.Manager, []bfbdd.SnapshotRoot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return bfbdd.RestoreManager(f)
}

// snapVerdict is the one-line machine-readable verify result; CI gates
// parse it, so the shape is append-only.
type snapVerdict struct {
	OK    bool   `json:"ok"`
	File  string `json:"file"`
	Vars  int    `json:"vars,omitempty"`
	Roots int    `json:"roots,omitempty"`
	Nodes uint64 `json:"nodes,omitempty"`
	Error string `json:"error,omitempty"`
}

func runVerify(args []string) error {
	path, err := oneFileArg(args, "verify")
	if err != nil {
		return err
	}
	v := snapVerdict{File: path}
	m, roots, err := restoreFile(path)
	if err != nil {
		v.Error = err.Error()
	} else {
		defer m.Close()
		v.OK = true
		v.Vars, v.Roots, v.Nodes = m.NumVars(), len(roots), m.NumNodes()
	}
	out, _ := json.Marshal(v)
	fmt.Println(string(out))
	if !v.OK {
		os.Exit(1)
	}
	return nil
}

func runRepack(args []string) error {
	fs := flag.NewFlagSet("repack", flag.ExitOnError)
	out := fs.String("o", "", "output snapshot file (required)")
	raw := fs.Bool("raw", false, "write raw child references instead of varint deltas")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("repack needs -o output")
	}
	path, err := oneFileArg(fs.Args(), "repack")
	if err != nil {
		return err
	}
	m, roots, err := restoreFile(path)
	if err != nil {
		return err
	}
	defer m.Close()

	var opts []bfbdd.SnapshotOption
	if *raw {
		opts = append(opts, bfbdd.SnapshotRawRefs())
	}
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := m.SnapshotRoots(of, roots, opts...); err != nil {
		of.Close()
		os.Remove(*out)
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}
	ist, _ := os.Stat(path)
	ost, _ := os.Stat(*out)
	fmt.Printf("repacked %s (%d bytes) -> %s (%d bytes), %d live nodes\n",
		path, ist.Size(), *out, ost.Size(), m.NumNodes())
	return nil
}

func runDot(args []string) error {
	path, err := oneFileArg(args, "dot")
	if err != nil {
		return err
	}
	m, roots, err := restoreFile(path)
	if err != nil {
		return err
	}
	defer m.Close()
	if len(roots) == 0 {
		return fmt.Errorf("snapshot has no roots to render")
	}
	names := make([]string, len(roots))
	bdds := make([]*bfbdd.BDD, len(roots))
	for i, rt := range roots {
		names[i] = fmt.Sprintf("id%d", rt.ID)
		bdds[i] = rt.B
	}
	return bfbdd.WriteDOT(os.Stdout, names, bdds...)
}
