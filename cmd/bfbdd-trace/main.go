// Command bfbdd-trace validates and pretty-prints build traces exported
// by the server's GET /v1/debug/traces/{id} endpoint.
//
// Input is one or more exported trace JSON objects — a single object or
// a concatenated stream — read from the named files, or from stdin when
// no files are given:
//
//	curl -s localhost:8707/v1/debug/traces/t-0000000000000001 | bfbdd-trace
//
// Every trace is checked against the export schema invariants (dense
// 1-based span ids, a single root, parents preceding children,
// non-negative durations); a malformed trace fails the run with a
// non-zero exit, which is what the CI smoke job relies on. Valid traces
// are rendered as an indented span tree with durations and attributes:
//
//	t-0000000000000001 POST /v1/sessions/{sid}/apply 12.4ms
//	└─ POST /v1/sessions/{sid}/apply 12.4ms status=200
//	   ├─ queue-wait 2.1ms
//	   └─ batch 10.2ms batch_id=7 ops=4
//	      ├─ kernel-build 9.8ms shannon_steps=51193 ...
//	      │  ├─ expand 1.2ms level=0 ops=4 worker=0
//	      ...
//
// With -q only validation runs (no tree output).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bfbdd/internal/trace"
)

func main() {
	quiet := flag.Bool("q", false, "validate only; print nothing for valid traces")
	flag.Parse()

	var failed bool
	process := func(name string, r io.Reader) {
		n, err := run(name, r, *quiet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfbdd-trace: %s: %v\n", name, err)
			failed = true
		} else if *quiet {
			fmt.Printf("%s: %d trace(s) valid\n", name, n)
		}
	}

	if flag.NArg() == 0 {
		process("stdin", os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bfbdd-trace: %v\n", err)
			failed = true
			continue
		}
		process(path, f)
		f.Close()
	}
	if failed {
		os.Exit(1)
	}
}

// run decodes, validates, and (unless quiet) prints every trace in r,
// returning how many it saw. An empty input is an error: a smoke test
// piping in an export must not pass vacuously.
func run(name string, r io.Reader, quiet bool) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	for {
		var ex trace.Exported
		if err := dec.Decode(&ex); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return n, fmt.Errorf("decode: %w", err)
		}
		if err := ex.Validate(); err != nil {
			return n, fmt.Errorf("trace %q invalid: %w", ex.TraceID, err)
		}
		n++
		if !quiet {
			printTrace(os.Stdout, &ex)
		}
	}
	if n == 0 {
		return 0, errors.New("no traces in input")
	}
	return n, nil
}

// printTrace renders one validated trace as an indented span tree.
func printTrace(w io.Writer, ex *trace.Exported) {
	fmt.Fprintf(w, "%s %s %s spans=%d", ex.TraceID, ex.Root,
		fdur(ex.DurationNs), len(ex.Spans))
	if ex.Forced {
		fmt.Fprint(w, " forced")
	}
	if ex.DroppedSpans > 0 {
		fmt.Fprintf(w, " dropped=%d", ex.DroppedSpans)
	}
	fmt.Fprintln(w)

	// children[p] lists the spans whose parent is span id p, in record
	// order (Validate guarantees parents precede children).
	children := make(map[int][]int, len(ex.Spans))
	for i, sp := range ex.Spans {
		children[sp.Parent] = append(children[sp.Parent], i)
	}
	var render func(idx int, prefix string, last bool)
	render = func(idx int, prefix string, last bool) {
		sp := &ex.Spans[idx]
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		fmt.Fprintf(w, "%s%s%s %s%s\n", prefix, branch, sp.Name,
			fdur(sp.DurationNs), fattrs(sp.Attrs))
		kids := children[sp.Span]
		for i, k := range kids {
			render(k, prefix+cont, i == len(kids)-1)
		}
	}
	roots := children[0]
	for i, k := range roots {
		render(k, "", i == len(roots)-1)
	}
}

func fdur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fattrs(attrs []trace.ExportedAttr) string {
	if len(attrs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, a := range attrs {
		fmt.Fprintf(&b, " %s=%d", a.Key, a.Value)
	}
	return b.String()
}
