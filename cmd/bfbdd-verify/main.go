// Command bfbdd-verify checks two combinational circuits for functional
// equivalence — the paper's motivating verification flow (§1): both
// netlists are converted to BDDs over a shared variable order, outputs
// are compared by canonical handle, and for every mismatch a
// counterexample input vector is extracted from the XOR of the two
// diagrams.
//
// Circuits are matched input-to-input and output-to-output by name when
// both sides name their signals, and by position otherwise.
//
// Usage:
//
//	bfbdd-verify -spec spec.bench -impl impl.bench [flags]
//	bfbdd-verify -spec adder-16 -impl cla-16          # built-in generators
//
//	-engine NAME    df, bf, hybrid, pbf (default), par
//	-workers N      workers for -engine par
//	-order METHOD   dfs (default), identity, interleave
//	-max-cex N      counterexamples to print per differing output (default 1)
//
// Exit status: 0 equivalent, 1 not equivalent, 2 usage/build error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bfbdd/internal/core"
	"bfbdd/internal/harness"
	"bfbdd/internal/netlist"
	"bfbdd/internal/node"
	"bfbdd/internal/order"
)

func main() {
	var (
		specArg    = flag.String("spec", "", "specification: .bench file or built-in circuit name")
		implArg    = flag.String("impl", "", "implementation: .bench file or built-in circuit name")
		engineName = flag.String("engine", "pbf", "df, bf, hybrid, pbf, par")
		workers    = flag.Int("workers", 4, "workers for -engine par")
		orderFlag  = flag.String("order", "dfs", "variable order method")
		maxCex     = flag.Int("max-cex", 1, "counterexamples per differing output")
	)
	flag.Parse()
	if *specArg == "" || *implArg == "" {
		fail(2, "both -spec and -impl are required")
	}

	spec, err := loadCircuit(*specArg)
	if err != nil {
		fail(2, "spec: %v", err)
	}
	impl, err := loadCircuit(*implArg)
	if err != nil {
		fail(2, "impl: %v", err)
	}

	// Match the implementation's inputs and outputs against the spec's.
	inputMap, err := matchByName(spec, impl, true)
	if err != nil {
		fail(2, "%v", err)
	}
	outputMap, err := matchByName(spec, impl, false)
	if err != nil {
		fail(2, "%v", err)
	}

	var m order.Method
	switch *orderFlag {
	case "dfs":
		m = order.DFS
	case "identity":
		m = order.Identity
	case "interleave":
		m = order.Interleave
	default:
		fail(2, "unknown -order %q", *orderFlag)
	}
	opts := core.Options{Levels: spec.NumInputs()}
	switch *engineName {
	case "df":
		opts.Engine = core.EngineDF
	case "bf":
		opts.Engine = core.EngineBF
	case "hybrid":
		opts.Engine = core.EngineHybrid
	case "pbf":
		opts.Engine = core.EnginePBF
	case "par":
		opts.Engine, opts.Workers, opts.Stealing = core.EnginePar, *workers, true
	default:
		fail(2, "unknown -engine %q", *engineName)
	}

	k := core.NewKernel(opts)
	specOrder := order.Compute(spec, m, 0)
	// The implementation's input at position p corresponds to the spec
	// input inputMap[p]; give it that input's level.
	implOrder := make([]int, impl.NumInputs())
	for p := range implOrder {
		implOrder[p] = specOrder[inputMap[p]]
	}

	start := time.Now()
	specRes, err := netlist.Build(k, spec, specOrder)
	if err != nil {
		fail(2, "building spec: %v", err)
	}
	implRes, err := netlist.Build(k, impl, implOrder)
	if err != nil {
		fail(2, "building impl: %v", err)
	}
	fmt.Printf("built %q (%d gates) and %q (%d gates) in %v\n",
		spec.Name, spec.NumGates(), impl.Name, impl.NumGates(),
		time.Since(start).Round(time.Millisecond))

	// level → spec input position, for printing counterexamples.
	levelToInput := make([]int, len(specOrder))
	for pos, lvl := range specOrder {
		levelToInput[lvl] = pos
	}

	differing := 0
	for si, sref := range specRes.Refs() {
		iref := implRes.Refs()[outputMap[si]]
		if sref == iref {
			continue
		}
		differing++
		name := spec.Gates[spec.Outputs[si]].Name
		if name == "" {
			name = fmt.Sprintf("out%d", si)
		}
		fmt.Printf("output %q DIFFERS\n", name)
		miter := k.Apply(core.OpXor, sref, iref)
		printed := 0
		for printed < *maxCex {
			cex, ok := k.AnySat(miter)
			if !ok {
				break
			}
			fmt.Printf("  counterexample:")
			assign := make([]bool, k.Levels())
			for lvl, v := range cex {
				assign[lvl] = v == 1
			}
			for pos, gi := range spec.Inputs {
				iname := spec.Gates[gi].Name
				if iname == "" {
					iname = fmt.Sprintf("in%d", pos)
				}
				val := 0
				if assign[specOrder[pos]] {
					val = 1
				}
				fmt.Printf(" %s=%d", iname, val)
			}
			fmt.Printf("  (spec=%v impl=%v)\n", k.Eval(sref, assign), k.Eval(iref, assign))
			printed++
			if printed < *maxCex {
				// Exclude this assignment and ask for another.
				lit := node.One
				excl := k.Pin(miter)
				for lvl, v := range cex {
					if v < 0 {
						continue
					}
					var vr node.Ref
					if v == 1 {
						vr = k.MkNode(lvl, node.Zero, node.One)
					} else {
						vr = k.MkNode(lvl, node.One, node.Zero)
					}
					lit = k.Apply(core.OpAnd, lit, vr)
				}
				miter = k.Apply(core.OpDiff, excl.Ref(), lit)
				k.Unpin(excl)
			}
		}
	}
	specRes.Release()
	implRes.Release()

	if differing == 0 {
		fmt.Println("EQUIVALENT: all outputs match")
		return
	}
	fmt.Printf("NOT EQUIVALENT: %d of %d outputs differ\n", differing, spec.NumOutputs())
	os.Exit(1)
}

// loadCircuit accepts a .bench path or a built-in generator name.
func loadCircuit(arg string) (*netlist.Circuit, error) {
	if _, err := os.Stat(arg); err == nil {
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.Parse(arg, f)
	}
	return harness.MakeCircuit(arg)
}

// matchByName maps spec positions to impl positions for inputs
// (forInputs) or outputs, by signal name when both sides are fully named,
// by position otherwise. The returned slice is indexed by impl position
// for inputs and by spec position for outputs.
func matchByName(spec, impl *netlist.Circuit, forInputs bool) ([]int, error) {
	sIdx, iIdx := spec.Outputs, impl.Outputs
	kind := "outputs"
	if forInputs {
		sIdx, iIdx = spec.Inputs, impl.Inputs
		kind = "inputs"
	}
	if len(sIdx) != len(iIdx) {
		return nil, fmt.Errorf("spec has %d %s, impl has %d", len(sIdx), kind, len(iIdx))
	}
	named := true
	for _, gi := range sIdx {
		if spec.Gates[gi].Name == "" {
			named = false
		}
	}
	for _, gi := range iIdx {
		if impl.Gates[gi].Name == "" {
			named = false
		}
	}
	mapping := make([]int, len(sIdx))
	if !named {
		for i := range mapping {
			mapping[i] = i
		}
		return mapping, nil
	}
	specPos := make(map[string]int, len(sIdx))
	for p, gi := range sIdx {
		specPos[spec.Gates[gi].Name] = p
	}
	for p, gi := range iIdx {
		name := impl.Gates[gi].Name
		sp, ok := specPos[name]
		if !ok {
			return nil, fmt.Errorf("impl %s %q has no counterpart in spec", kind, name)
		}
		if forInputs {
			mapping[p] = sp // impl position -> spec position
		} else {
			mapping[sp] = p // spec position -> impl position
		}
	}
	return mapping, nil
}

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bfbdd-verify: "+format+"\n", args...)
	os.Exit(code)
}
