// Command bfbdd-bench regenerates the tables and figures of Yang &
// O'Hallaron, "Parallel Breadth-First BDD Construction" (PPoPP 1997).
//
// By default it runs a scaled-down version of the paper's evaluation
// (finishing in a few minutes); -full runs the paper-scale circuits
// (c2670, c3540, mult-13, mult-14 — expect a long run and several GB of
// memory). Each figure is printed in the layout of the corresponding
// figure in the paper; "modeled" variants are additionally printed when
// the host cannot execute workers in parallel (see EXPERIMENTS.md).
//
// Usage:
//
//	bfbdd-bench [flags]
//
//	-full               paper-scale circuits
//	-circuits LIST      comma-separated circuit names (overrides presets)
//	-detail NAME        circuit for the per-circuit figures 13–19
//	-procs LIST         processor counts; 0 means the sequential row
//	-figs LIST          figures to print (e.g. "7,8,15"); default all
//	-threshold N        partial breadth-first evaluation threshold
//	-groupsize N        operations per stealable group
//	-gc POLICY          "compact" or "freelist"
//	-order METHOD       "dfs", "identity", "interleave", "reverse", "shuffle"
//	-nosteal            disable work stealing
//	-o FILE             write the report to FILE instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bfbdd/internal/core"
	"bfbdd/internal/harness"
	"bfbdd/internal/order"
)

func main() {
	var (
		full      = flag.Bool("full", false, "run the paper-scale circuits (slow)")
		circuits  = flag.String("circuits", "", "comma-separated circuit list")
		detail    = flag.String("detail", "", "circuit for figures 13-19 (default: last circuit)")
		procsFlag = flag.String("procs", "0,1,2,4,8", "processor counts (0 = sequential)")
		figsFlag  = flag.String("figs", "all", "figures to print, e.g. \"7,8,15\"")
		threshold = flag.Int("threshold", 0, "evaluation threshold (0 = default)")
		groupSize = flag.Int("groupsize", 0, "steal group size (0 = default)")
		gcPolicy  = flag.String("gc", "compact", "garbage collector: compact or freelist")
		orderFlag = flag.String("order", "dfs", "variable order: dfs, identity, interleave, reverse, shuffle")
		noSteal   = flag.Bool("nosteal", false, "disable work stealing")
		outFile   = flag.String("o", "", "write report to file")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	circuitList := []string{"c2670-8", "c3540-8", "mult-10", "mult-11"}
	if *full {
		circuitList = []string{"c2670", "c3540", "mult-13", "mult-14"}
	}
	if *circuits != "" {
		circuitList = splitList(*circuits)
	}
	detailCircuit := circuitList[len(circuitList)-1]
	if *detail != "" {
		detailCircuit = *detail
	}

	procs, err := parseInts(*procsFlag)
	if err != nil {
		fatal(fmt.Errorf("bad -procs: %w", err))
	}
	figs, err := parseFigs(*figsFlag)
	if err != nil {
		fatal(err)
	}

	base := harness.Config{
		EvalThreshold:   *threshold,
		GroupSize:       *groupSize,
		DisableStealing: *noSteal,
	}
	switch *gcPolicy {
	case "compact":
		base.GC = core.GCCompact
	case "freelist":
		base.GC = core.GCFreeList
	default:
		fatal(fmt.Errorf("unknown -gc %q", *gcPolicy))
	}
	switch *orderFlag {
	case "dfs":
		base.Order = order.DFS
	case "identity":
		base.Order = order.Identity
	case "interleave":
		base.Order = order.Interleave
	case "reverse":
		base.Order = order.Reverse
	case "shuffle":
		base.Order = order.Shuffle
	default:
		fatal(fmt.Errorf("unknown -order %q", *orderFlag))
	}

	fmt.Fprintf(out, "bfbdd-bench: reproducing Yang & O'Hallaron (PPoPP 1997)\n")
	fmt.Fprintf(out, "host: GOMAXPROCS=%d; circuits: %s; procs: %s; order: %s; gc: %s\n",
		runtime.GOMAXPROCS(0), strings.Join(circuitList, ","), *procsFlag, *orderFlag, *gcPolicy)
	parallelHost := harness.HostParallel(runtime.GOMAXPROCS(0))
	if !parallelHost {
		fmt.Fprintf(out, "NOTE: single-core host — wall-clock speedups are physically flat here;\n")
		fmt.Fprintf(out, "      modeled figures (see EXPERIMENTS.md) carry the speedup shapes.\n")
	}

	rs := harness.ResultSet{}
	for _, c := range circuitList {
		fmt.Fprintf(os.Stderr, "running %s across %v procs...\n", c, procs)
		start := time.Now()
		m, err := harness.Sweep(c, procs, base)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  done in %v\n", time.Since(start).Round(time.Millisecond))
		rs[c] = m
	}
	detailRuns, ok := rs[detailCircuit]
	if !ok {
		fatal(fmt.Errorf("-detail circuit %q not in circuit list", detailCircuit))
	}

	want := func(n int) bool { _, ok := figs[n]; return ok }
	if want(7) {
		harness.Fig7(out, rs)
	}
	if want(8) {
		harness.Fig8(out, rs)
		harness.Fig8Modeled(out, rs)
	}
	if want(9) {
		harness.Fig9(out, rs)
		harness.Fig9DSM(out, rs)
	}
	if want(10) {
		harness.Fig10(out, rs)
	}
	if want(11) {
		harness.Fig11(out, rs)
	}
	if want(12) {
		harness.Fig12(out, rs)
	}
	if want(13) {
		harness.Fig13(out, detailCircuit, detailRuns)
		harness.Fig13Modeled(out, detailCircuit, detailRuns)
	}
	if want(14) {
		harness.Fig14(out, detailCircuit, detailRuns)
		harness.Fig14Modeled(out, detailCircuit, detailRuns)
	}
	if want(15) {
		oneProc := detailRuns[1]
		if oneProc == nil {
			for _, p := range procs {
				if detailRuns[p] != nil {
					oneProc = detailRuns[p]
					break
				}
			}
		}
		harness.Fig15(out, detailCircuit, oneProc)
	}
	if want(16) {
		harness.Fig16(out, detailCircuit, detailRuns)
	}
	if want(17) {
		harness.Fig17(out, detailCircuit, detailRuns)
		harness.Fig17Modeled(out, detailCircuit, detailRuns)
	}
	if want(18) {
		harness.Fig18(out, detailCircuit, detailRuns)
	}
	if want(19) {
		harness.Fig19(out, detailCircuit, detailRuns)
		harness.Fig19Modeled(out, detailCircuit, detailRuns)
	}
	harness.Summary(out, rs)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseFigs(s string) (map[int]bool, error) {
	figs := make(map[int]bool)
	if s == "all" {
		for n := 7; n <= 19; n++ {
			figs[n] = true
		}
		return figs, nil
	}
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 7 || n > 19 {
			return nil, fmt.Errorf("bad figure %q (valid: 7..19)", part)
		}
		figs[n] = true
	}
	return figs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bfbdd-bench:", err)
	os.Exit(1)
}
