package bfbdd

import (
	"fmt"
	"io"

	"bfbdd/internal/node"
	"bfbdd/internal/snapshot"
)

// SnapshotRoot labels one BDD in a snapshot with a caller-chosen ID. IDs
// are opaque to the engine and survive a save/restore round trip, which
// lets a caller (the server uses its wire handle numbers) re-associate
// restored diagrams with external state.
type SnapshotRoot struct {
	ID uint64
	B  *BDD
}

// snapshotConfig collects SnapshotOption settings.
type snapshotConfig struct {
	rawRefs bool
}

// SnapshotOption tunes snapshot output.
type SnapshotOption func(*snapshotConfig)

// SnapshotRawRefs disables the varint delta encoding of child references,
// producing a larger but flatter stream (format debugging and encoding
// ablations; restore accepts both encodings transparently).
func SnapshotRawRefs() SnapshotOption {
	return func(c *snapshotConfig) { c.rawRefs = true }
}

// Snapshot serializes the subgraph reachable from the given roots (plus
// the manager's variable order) to w in the versioned, checksummed
// snapshot format; roots are labeled 0, 1, … in argument order. Only
// reachable nodes are written, so the stream is implicitly garbage
// collected. Snapshot must not race with operations on the manager —
// serialize it like any other manager call.
func (m *Manager) Snapshot(w io.Writer, roots ...*BDD) error {
	labeled := make([]SnapshotRoot, len(roots))
	for i, b := range roots {
		labeled[i] = SnapshotRoot{ID: uint64(i), B: b}
	}
	return m.SnapshotRoots(w, labeled)
}

// SnapshotRoots is Snapshot with caller-chosen root IDs.
func (m *Manager) SnapshotRoots(w io.Writer, roots []SnapshotRoot, opts ...SnapshotOption) error {
	m.checkOpen()
	var cfg snapshotConfig
	for _, o := range opts {
		o(&cfg)
	}
	m.k.EnsureReadable() // snapshot.Write traverses the store directly
	srs := make([]snapshot.Root, len(roots))
	for i, rt := range roots {
		if rt.B == nil {
			return fmt.Errorf("bfbdd: snapshot root %d is nil", i)
		}
		if rt.B.m != m {
			return fmt.Errorf("bfbdd: snapshot root %d belongs to a different manager", i)
		}
		srs[i] = snapshot.Root{ID: rt.ID, Ref: rt.B.ref()}
	}
	return snapshot.Write(w, m.k.Store(), m.var2level, srs, snapshot.Options{RawRefs: cfg.rawRefs})
}

// RestoreManager reads a snapshot stream and rebuilds it as a fresh
// manager: the variable count and order come from the stream, everything
// else (engine, workers, GC policy, …) from opts, so a snapshot taken
// under one configuration can be restored under another.
//
// Restore is compacting: nodes are re-inserted bottom-up through the
// canonical constructor into brand-new dense arenas and freshly built
// per-variable unique tables, so a restored manager holds exactly the
// live subgraph, renumbered for locality, regardless of how fragmented
// the saved manager was. The returned roots carry the stream's IDs; each
// is pinned like any other BDD handle.
//
// Malformed input yields a typed error from bfbdd/internal/snapshot
// (never a panic) and no manager.
func RestoreManager(r io.Reader, opts ...Option) (m *Manager, roots []SnapshotRoot, err error) {
	rd, err := snapshot.NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	m = New(rd.NumVars(), opts...)
	// Close via a captured local: a bare `return nil, nil, err` clears the
	// named m before the deferred cleanup runs.
	cleanup := m
	defer func() {
		if err != nil {
			cleanup.Close()
			m, roots = nil, nil
		}
	}()
	copy(m.var2level, rd.Var2Level())
	for v, l := range m.var2level {
		m.level2var[l] = v
	}
	srs, err := rd.Resolve(func(level int, low, high node.Ref) node.Ref {
		return m.k.MkNode(level, low, high)
	})
	if err != nil {
		return nil, nil, err
	}
	roots = make([]SnapshotRoot, len(srs))
	for i, rt := range srs {
		roots[i] = SnapshotRoot{ID: rt.ID, B: m.wrap(rt.Ref)}
	}
	return m, roots, nil
}
